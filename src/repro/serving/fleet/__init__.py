"""Multi-GPU fleet serving: worker pool, dispatch policies, autoscaling.

This package scales the event-driven concurrent engine from one
:class:`~repro.serving.concurrent.resources.GpuScheduler` per node group to a
:class:`~repro.serving.fleet.pool.GpuWorkerPool` of them:

* :mod:`~repro.serving.fleet.dispatch` — pluggable, deterministic routing
  (least-loaded, locality-by-batch-key, sticky-by-session).
* :mod:`~repro.serving.fleet.autoscale` — the declarative
  :class:`AutoscaleSpec` policy (bounds, watermarks, warm-up delay).
* :mod:`~repro.serving.fleet.pool` — the pool runtime plus the autoscaler
  that grows/shrinks it on the simulated clock.

Most users never import this package directly: set ``gpu_workers``,
``dispatch_policy`` and ``autoscale`` on a
:class:`~repro.serving.api.ServingSpec` and the concurrent backend builds
the pool for you.
"""

from __future__ import annotations

from .autoscale import AutoscaleSpec
from .dispatch import (
    DISPATCH_POLICIES,
    DispatchPolicy,
    LeastLoadedDispatch,
    LocalityDispatch,
    StickyDispatch,
    make_dispatch,
)

__all__ = [
    "AutoscaleSpec",
    "DISPATCH_POLICIES",
    "DispatchPolicy",
    "GpuWorkerPool",
    "LeastLoadedDispatch",
    "LocalityDispatch",
    "POOL_TRACK",
    "StickyDispatch",
    "make_dispatch",
]

# GpuWorkerPool pulls in the concurrent engine's resources; load it lazily so
# importing the fleet package (e.g. from api.spec for AutoscaleSpec) cannot
# re-enter a partially initialised serving package.
_LAZY = {"GpuWorkerPool": ".pool", "POOL_TRACK": ".pool"}


def __getattr__(name: str):
    if name in _LAZY:
        from importlib import import_module

        module = import_module(_LAZY[name], __package__)
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)

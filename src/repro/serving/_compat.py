"""Deprecation plumbing for the pre-`ServingSpec` serving entry points.

The unified serving API (:mod:`repro.serving.api`) wraps the three historical
front doors — :class:`~repro.serving.engine.ContextLoadingEngine`,
:class:`~repro.serving.concurrent.ConcurrentEngine` and
:class:`~repro.cluster.frontend.ClusterFrontend` — behind one declarative
:class:`~repro.serving.api.ServingSpec`.  The old classes keep working as thin
shims, but constructing one *directly* emits a :class:`DeprecationWarning`.

The API layer itself builds the very same classes, so the warning must know
who is calling: :func:`api_construction` marks the construction as internal
(backends enter it around every engine/frontend build), and
:func:`warn_deprecated_entry_point` stays silent inside that scope.
"""

from __future__ import annotations

import contextlib
import warnings
from contextvars import ContextVar
from typing import Iterator

__all__ = ["api_construction", "warn_deprecated_entry_point"]

_INTERNAL_CONSTRUCTION: ContextVar[bool] = ContextVar(
    "repro_serving_internal_construction", default=False
)


@contextlib.contextmanager
def api_construction() -> Iterator[None]:
    """Mark engine/frontend constructions in this scope as API-internal."""
    token = _INTERNAL_CONSTRUCTION.set(True)
    try:
        yield
    finally:
        _INTERNAL_CONSTRUCTION.reset(token)


def warn_deprecated_entry_point(old: str, spec_hint: str) -> None:
    """Emit the deprecation warning for a direct legacy construction.

    ``stacklevel=3`` points the warning at the caller of the deprecated
    ``__init__``, not at this helper or the ``__init__`` itself.
    """
    if _INTERNAL_CONSTRUCTION.get():
        return
    warnings.warn(
        f"Constructing {old} directly is deprecated; declare a "
        f"repro.serving.api.ServingSpec ({spec_hint}) and use serve() / "
        f"build_backend() instead.  The class keeps working as a shim.",
        DeprecationWarning,
        stacklevel=3,
    )

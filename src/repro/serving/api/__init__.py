"""The unified serving API: one spec, one backend protocol, one driver.

This package is the single public serving surface of the repo:

* :class:`ServingSpec` — a frozen, validated declaration of the deployment
  (model, codec levels, store topology single/tiered/cluster, node count,
  replication, tier sizes, links, concurrency, admission);
* :class:`Backend` — the protocol (``ingest`` / ``submit`` / ``run`` /
  ``report``) with three adapters over the existing engines
  (:class:`SingleNodeBackend`, :class:`ConcurrentBackend`,
  :class:`ClusterBackend`), all speaking :class:`ServeRequest` /
  :class:`ServeResponse` / :class:`RunReport`;
* :class:`Driver` / :func:`serve` — the arrival-driven open-loop runner that
  replays a workload's true Poisson arrival process (ingest events
  interleaved with queries, pluggable admission/shedding) through any
  backend.

The legacy entry points (``ContextLoadingEngine``, ``ConcurrentEngine``,
``ClusterFrontend``) remain as deprecation shims over the same machinery.

``backends`` and ``driver`` are loaded lazily (PEP 562): the legacy engines
import :mod:`.types` at class-definition time, so the eager surface of this
package must stay limited to the leaf modules.
"""

from __future__ import annotations

from ..fleet.autoscale import AutoscaleSpec
from .spec import ServingSpec
from .types import RunReport, ServeRequest, ServeResponse

__all__ = [
    "AdmissionPolicy",
    "AdmitAll",
    "AutoscaleSpec",
    "Backend",
    "ClusterBackend",
    "ConcurrencyLimitAdmission",
    "ConcurrentBackend",
    "Driver",
    "RunReport",
    "ServeRequest",
    "ServeResponse",
    "ServingSpec",
    "SingleNodeBackend",
    "TokenBucketAdmission",
    "build_backend",
    "serve",
]

_LAZY = {
    "Backend": ".backends",
    "SingleNodeBackend": ".backends",
    "ConcurrentBackend": ".backends",
    "ClusterBackend": ".backends",
    "build_backend": ".backends",
    "AdmissionPolicy": ".driver",
    "AdmitAll": ".driver",
    "TokenBucketAdmission": ".driver",
    "ConcurrencyLimitAdmission": ".driver",
    "Driver": ".driver",
    "serve": ".driver",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))

"""Arrival-driven open-loop serving and the ``serve()`` convenience.

The legacy :class:`~repro.cluster.simulator.ClusterSimulator` served the
workload in fixed-size *waves*: ``N`` requests at a time, arrival clocks reset
at every wave boundary, the system fully drained between waves.  That shape
hides steady-state queueing — the very thing concurrency experiments are
about.  The :class:`Driver` replays the workload generator's **true Poisson
arrival process** instead: ingest events happen at first touch in arrival
order, admitted queries enter one continuous event simulation with their
absolute arrival times, and queueing emerges from the schedule rather than
from wave boundaries.

Admission is pluggable: an :class:`AdmissionPolicy` sees every arrival and
may shed it (open-loop load shedding); shed requests are counted in the
:class:`~repro.serving.api.types.RunReport` and never enter the simulation.

Topology events (node failures/recoveries) split the run into segments: each
segment is one continuous simulation, and the event applies at the boundary.
Cross-segment queueing state resets — exactly the semantics of a node dying
at that point in the arrival stream.
"""

from __future__ import annotations

import warnings
from typing import Iterable, Mapping, Protocol, Sequence

from ...faults import FaultInjector, FaultSchedule, ResilienceManager, ResilienceReport
from ...storage.kv_store import CapacityError
from ...telemetry.slo import SLOObjective
from ...telemetry.trace import Tracer
from .backends import Backend, ClusterBackend, build_backend
from .spec import ServingSpec
from .types import RunReport, ServeRequest

__all__ = [
    "AdmissionPolicy",
    "AdmitAll",
    "TokenBucketAdmission",
    "ConcurrencyLimitAdmission",
    "Driver",
    "serve",
]


class AdmissionPolicy(Protocol):
    """Decides, per arrival, whether a request is served or shed."""

    def admit(self, request: ServeRequest) -> bool:
        """True to serve the request, False to shed it.

        Called once per arrival, in arrival order; policies may keep state
        keyed on ``request.arrival_s`` (the clock only moves forward within
        one run).  A workload generator restarts its arrival clock on every
        :meth:`Driver.run`, so stateful policies should also implement
        ``reset()`` — the driver calls it at the start of each run.
        """
        ...


class AdmitAll:
    """The default policy: every arrival is served."""

    def admit(self, request: ServeRequest) -> bool:
        return True


class TokenBucketAdmission:
    """Classic token-bucket shedding: sustained rate + burst headroom.

    The bucket refills at ``rate_per_s`` and holds at most ``burst`` tokens;
    an arrival that finds the bucket empty is shed.  This bounds the rate the
    backend sees regardless of the offered load.
    """

    def __init__(self, rate_per_s: float, burst: int = 1) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst < 1:
            raise ValueError("burst must be at least 1")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = float(burst)
        self._last_s = 0.0

    def reset(self) -> None:
        """Start a fresh run: full bucket, arrival clock back at zero."""
        self._tokens = float(self.burst)
        self._last_s = 0.0

    def admit(self, request: ServeRequest) -> bool:
        elapsed = max(request.arrival_s - self._last_s, 0.0)
        self._last_s = request.arrival_s
        self._tokens = min(self._tokens + elapsed * self.rate_per_s, float(self.burst))
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class ConcurrencyLimitAdmission:
    """Shed arrivals that would exceed a modeled in-flight limit.

    Open-loop drivers do not know true completion times up front, so the
    policy models each admitted request as busy for ``est_service_s`` and
    sheds an arrival when ``max_inflight`` modeled requests are still busy.
    """

    def __init__(self, max_inflight: int, est_service_s: float) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if est_service_s <= 0:
            raise ValueError("est_service_s must be positive")
        self.max_inflight = max_inflight
        self.est_service_s = est_service_s
        self._departures: list[float] = []

    def reset(self) -> None:
        """Start a fresh run: no modeled requests in flight.

        Without this, departures timed on a previous run's (absolute) clock
        would pin every slot busy forever once the next run's arrival clock
        restarts at zero.
        """
        self._departures = []

    def admit(self, request: ServeRequest) -> bool:
        now = request.arrival_s
        self._departures = [d for d in self._departures if d > now]
        if len(self._departures) >= self.max_inflight:
            return False
        self._departures.append(now + self.est_service_s)
        return True


class Driver:
    """Replays an arrival process end to end through any backend.

    Parameters
    ----------
    backend:
        A built :class:`~repro.serving.api.backends.Backend`, or a
        :class:`~repro.serving.api.spec.ServingSpec` to build one from.
    workload:
        A :class:`~repro.cluster.workload.WorkloadGenerator` (its
        ``iter_requests`` supplies the arrival process) or any iterable of
        :class:`ServeRequest` / workload ``Request`` objects.
    admission:
        Pluggable shedding hook; defaults to :class:`AdmitAll`.
    reingest_on_miss:
        Re-ingest a known context that was served from text because every
        replica lost it, so placement keeps following popularity across
        :meth:`run` calls.
    node_failures / node_recoveries:
        Request index -> node id, applied at that arrival.  Each event closes
        the current simulation segment.  On single-node backends the node id
        is ignored — the one store goes dark (queries degrade to text).
    faults:
        Optional :class:`~repro.faults.FaultSchedule`.  Its compiled events
        (node crashes, link degradation, straggler GPUs, corrupted replicas)
        are applied on the simulated clock: at the first arrival past an
        event's time the driver closes the current segment and mutates the
        backend in place.  Fault and recovery instants land on the tracer's
        ``"faults"`` track, per-fault MTTR and the resilience counters ride
        on ``report.resilience``.  ``None`` (default) keeps the fault-free
        fast path byte-identical.
    max_batch:
        Optional cap on requests per simulation segment.  ``None`` (default)
        runs the whole stream as one continuous open-loop simulation.
    tracer:
        Optional :class:`~repro.telemetry.trace.Tracer`.  When given, it is
        wired through the backend (engines, stores, simulated resources), the
        driver adds ingest/encode spans and shed instants, and the finished
        :class:`RunReport` carries it as ``report.telemetry``.  ``None`` (the
        default) keeps the untraced fast path.
    window_s:
        Tumbling-window width of ``report.timeseries``; ``None`` (default)
        picks a 1/2/5-stepped width giving roughly 60 windows over the run.
    slos:
        Declarative :class:`~repro.telemetry.slo.SLOObjective` list; the
        report's burn-rate :class:`~repro.telemetry.slo.Alert` objects land in
        ``report.alerts`` (structural detectors run either way).
    simcheck:
        Runtime sanitizers (:mod:`repro.simcheck`).  ``True`` or a
        :class:`~repro.simcheck.sanitizers.SimcheckConfig` enables them for
        this driver: event clocks are replaced with recording
        :class:`~repro.simcheck.sanitizers.ClockSanitizer` instances and
        conservation invariants are validated on the finished run (findings
        land on ``report.simcheck``; strict configs raise
        :class:`~repro.simcheck.sanitizers.SimcheckError`).  ``False`` opts
        out; ``None`` (default) follows the process-wide default
        (:mod:`repro.simcheck.runtime` — the test-suite fixture and the
        ``REPRO_SIMCHECK`` environment variable).

    Notes
    -----
    On capacity-bounded deployments (``spec.max_bytes_per_node`` set) every
    first-touch ingest is also a segment boundary: pending requests are
    served against the store state current at *their* arrival before the
    ingest may evict anything they were routed to.  Unbounded stores only
    grow, so there the run stays one continuous simulation end to end.

    Example
    -------
    >>> spec = ServingSpec(concurrency=8)
    >>> driver = Driver(spec, workload=WorkloadGenerator(num_contexts=20))
    >>> report = driver.run(num_requests=100)  # doctest: +SKIP
    """

    def __init__(
        self,
        backend: Backend | ServingSpec,
        workload=None,
        *,
        admission: AdmissionPolicy | None = None,
        reingest_on_miss: bool = True,
        node_failures: Mapping[int, str] | None = None,
        node_recoveries: Mapping[int, str] | None = None,
        faults: FaultSchedule | None = None,
        max_batch: int | None = None,
        tracer: Tracer | None = None,
        window_s: float | None = None,
        slos: Sequence[SLOObjective] = (),
        alert_rules=None,
        simcheck=None,
    ) -> None:
        if isinstance(backend, ServingSpec):
            backend = build_backend(backend)
        if max_batch is not None and max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.backend = backend
        self.tracer = tracer
        if tracer is not None:
            backend.attach_tracer(tracer)
        self.workload = workload
        self.admission = admission or AdmitAll()
        self.reingest_on_miss = reingest_on_miss
        self.node_failures = dict(node_failures or {})
        self.node_recoveries = dict(node_recoveries or {})
        if faults is not None and not isinstance(faults, FaultSchedule):
            raise TypeError("faults must be a FaultSchedule (or None)")
        self.faults = faults
        self.max_batch = max_batch
        self.window_s = window_s
        self.slos = tuple(slos)
        self.alert_rules = alert_rules
        self.simcheck = simcheck
        if (self.node_failures or self.node_recoveries) and not hasattr(
            backend, "mark_down"
        ):
            raise ValueError("topology events require a backend with mark_down/mark_up")
        #: Contexts ever ingested — persists across run() calls.
        self._known: set[str] = set()
        self._known_tokens: dict[str, int] = {}

    # --------------------------------------------------------------- requests
    def _requests(self, num_requests: int | None) -> list[ServeRequest]:
        spec = self.backend.spec
        slo = spec.slo_s if spec.adaptive else None
        if self.workload is None:
            raise ValueError("no workload to drive")
        if hasattr(self.workload, "iter_requests"):
            if num_requests is None:
                raise ValueError("num_requests is required with a workload generator")
            source: Iterable = self.workload.iter_requests(num_requests)
        else:
            source = self.workload
        requests = []
        for item in source:
            if isinstance(item, ServeRequest):
                if item.slo_s is None and slo is not None:
                    item = ServeRequest(
                        context_id=item.context_id,
                        question=item.question,
                        arrival_s=item.arrival_s,
                        num_tokens=item.num_tokens,
                        task=item.task,
                        slo_s=slo,
                    )
                requests.append(item)
            else:
                requests.append(ServeRequest.from_workload(item, slo_s=slo))
        if num_requests is not None:
            requests = requests[:num_requests]
        return requests

    # --------------------------------------------------------------------- run
    def run(self, num_requests: int | None = None) -> RunReport:
        """Serve the arrival stream open-loop and report the outcome."""
        backend = self.backend
        requests = self._requests(num_requests)
        reset = getattr(self.admission, "reset", None)
        if callable(reset):
            reset()
        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        monitor = self._simcheck_monitor()
        if monitor is not None:
            attach = getattr(backend, "attach_simcheck", None)
            if callable(attach):
                attach(monitor)
        evictions_before = backend.total_evictions()
        tier_before = backend.tier_counters()
        # Under capacity pressure an ingest can evict a context a pending
        # request was routed to at *its* arrival: serve what has already
        # arrived before mutating the stores.  Unbounded stores only ever
        # grow, so there the whole stream stays one continuous simulation.
        ingest_is_barrier = backend.spec.max_bytes_per_node is not None

        cluster = getattr(getattr(backend, "frontend", None), "cluster", None)
        manager: ResilienceManager | None = backend.resilience
        injector: FaultInjector | None = None
        if self.faults is not None:
            if manager is None:
                # A schedule without a spec-level policy still needs fault
                # bookkeeping (MTTR, corruption clears): a bare manager.
                manager = ResilienceManager(None, seed=self.faults.seed)
                backend.resilience = manager
                if cluster is not None and cluster.resilience is None:
                    cluster.resilience = manager
            injector = FaultInjector(self.faults, backend, manager, tracer=tracer)
        counters_before = manager.counters() if manager is not None else None
        repair_enabled = (
            manager is not None
            and cluster is not None
            and manager.policy is not None
            and manager.policy.repair
        )
        segment_boundaries: list[int] = []
        segment_times: list[float] = []

        ingests = 0
        failed_ingests = 0
        replication_bytes = 0.0
        shed = 0
        shed_times: list[float] = []
        hard_failures = 0
        responses = []
        pending: list[ServeRequest] = []

        def flush() -> None:
            nonlocal hard_failures
            if not pending:
                return
            batch, pending[:] = list(pending), []
            for request in batch:
                backend.submit(request)
            try:
                responses.extend(backend.run())
            except Exception:
                # The continuous segment failed wholesale.  Re-serve it one
                # request at a time so a single bad request costs itself, not
                # its segment-mates (mirrors the legacy wave fallback).
                for request in batch:
                    backend.submit(request)
                    try:
                        responses.extend(backend.run())
                    except Exception:
                        hard_failures += 1

        for index, request in enumerate(requests):
            if tracer is not None:
                tracer.advance_to(request.arrival_s)
            if manager is not None:
                # Breaker timers, the hedge window and the repair queue all
                # run on arrival time; repairs become readable here.
                manager.now = max(manager.now, request.arrival_s)
                if repair_enabled:
                    manager.sweep(cluster, request.arrival_s, tracer)
            fault_due = injector is not None and injector.due(request.arrival_s)
            if fault_due or index in self.node_failures or index in self.node_recoveries:
                flush()
                if not segment_boundaries:
                    warnings.warn(
                        "a topology/fault event closes the current simulation "
                        "segment: queued link and GPU backlog does not carry "
                        "across the boundary (indices are recorded on "
                        "RunReport.segment_boundaries)",
                        stacklevel=2,
                    )
                segment_boundaries.append(index)
                segment_times.append(request.arrival_s)
                if fault_due:
                    injector.apply_due(request.arrival_s)
                if index in self.node_failures:
                    backend.mark_down(self.node_failures[index])
                    if tracer is not None:
                        tracer.instant(
                            "node down",
                            track="cluster",
                            at_s=request.arrival_s,
                            category="cluster",
                            node=self.node_failures[index],
                        )
                if index in self.node_recoveries:
                    backend.mark_up(self.node_recoveries[index])
                    if tracer is not None:
                        tracer.instant(
                            "node up",
                            track="cluster",
                            at_s=request.arrival_s,
                            category="cluster",
                            node=self.node_recoveries[index],
                        )
            if not self.admission.admit(request):
                shed += 1
                shed_times.append(request.arrival_s)
                if tracer is not None:
                    tracer.instant(
                        "shed",
                        track="admission",
                        at_s=request.arrival_s,
                        category="admission",
                        context_id=request.context_id,
                    )
                    tracer.metrics.counter(
                        "requests_shed", "arrivals refused by the admission policy"
                    ).inc()
                continue
            if request.context_id not in self._known and request.num_tokens is not None:
                if ingest_is_barrier:
                    flush()
                try:
                    report = backend.ingest(request.context_id, request.num_tokens)
                except CapacityError:
                    failed_ingests += 1
                    if tracer is not None:
                        tracer.instant(
                            "failed ingest",
                            track="ingest",
                            at_s=request.arrival_s,
                            category="ingest",
                            context_id=request.context_id,
                        )
                else:
                    self._known.add(request.context_id)
                    self._known_tokens[request.context_id] = request.num_tokens
                    ingests += 1
                    replication_bytes += getattr(report, "replicated_bytes", 0.0)
                    if tracer is not None:
                        tracer.span(
                            "ingest/encode",
                            track="ingest",
                            start_s=request.arrival_s,
                            dur_s=getattr(report, "encode_delay_s", 0.0),
                            category="ingest",
                            context_id=request.context_id,
                            stored_bytes=getattr(report, "total_stored_bytes", 0.0),
                        )
                        tracer.metrics.counter(
                            "ingests", "contexts encoded and stored"
                        ).inc()
                        tracer.metrics.counter(
                            "ingested_bytes", "bytes written at ingest"
                        ).inc(getattr(report, "total_stored_bytes", 0.0))
            pending.append(request)
            if self.max_batch is not None and len(pending) >= self.max_batch:
                flush()
        flush()

        if injector is not None:
            # Events past the last arrival still happen (and clear MTTR).
            injector.drain()
        if manager is not None and cluster is not None:
            manager.drain(cluster, manager.now, tracer)
        fault_outcomes = injector.finalize() if injector is not None else ()

        if self.reingest_on_miss:
            ingests_, failed_, bytes_ = self._reingest_missed(responses)
            ingests += ingests_
            failed_ingests += failed_
            replication_bytes += bytes_

        served_tokens = [
            self._known_tokens[r.context_id]
            for r in responses
            if r.context_id in self._known_tokens
        ]
        report = backend.report(
            responses,
            shed=shed,
            hard_failures=hard_failures,
            ingests=ingests,
            failed_ingests=failed_ingests,
            replication_bytes=replication_bytes,
            evictions_before=evictions_before,
            tier_before=tier_before,
            mean_context_tokens=(
                int(sum(served_tokens) / len(served_tokens)) if served_tokens else 0
            ),
            # Shed/failed arrivals are part of the offered process even though
            # no response records their times.
            min_duration_s=max((r.arrival_s for r in requests), default=0.0),
            shed_times=shed_times,
            window_s=self.window_s,
            objectives=self.slos,
            alert_rules=self.alert_rules,
        )
        report.segment_boundaries = tuple(segment_boundaries)
        report.segment_boundary_times_s = tuple(segment_times)
        if manager is not None:
            counts = manager.counters()
            report.resilience = ResilienceReport(
                offered=len(requests),
                served=len(responses),
                degraded=report.degraded,
                shed=shed,
                failed=hard_failures,
                faults=fault_outcomes,
                **{key: counts[key] - counters_before[key] for key in counts},
            )
        if self.tracer is not None:
            report.telemetry = self.tracer
        if monitor is not None:
            monitor.finalize(report, backend=backend, tracer=tracer)
        return report

    def _simcheck_monitor(self):
        """Resolve the ``simcheck=`` setting into a monitor (or ``None``).

        Resolution happens per :meth:`run`, so a driver built before the
        test-suite fixture enabled the process default still gets sanitized.
        """
        setting = self.simcheck
        if setting is False:
            return None
        from ...simcheck.runtime import default_config
        from ...simcheck.sanitizers import SimcheckConfig, SimcheckMonitor

        if setting is None or setting is True:
            config = default_config() if setting is None else SimcheckConfig()
        elif isinstance(setting, SimcheckConfig):
            config = setting
        else:
            raise TypeError(
                "simcheck must be None, a bool, or a SimcheckConfig; "
                f"got {setting!r}"
            )
        return SimcheckMonitor(config) if config is not None else None

    def _reingest_missed(self, responses) -> tuple[int, int, float]:
        """Re-ingest known contexts that degraded to text (capacity churn)."""
        ingests = failed = 0
        replication_bytes = 0.0
        seen: set[str] = set()
        for response in responses:
            context_id = response.context_id
            if (
                response.used_kv_cache
                or context_id in seen
                or context_id not in self._known_tokens
                or self._resident(context_id)
            ):
                continue
            seen.add(context_id)
            try:
                report = self.backend.ingest(
                    context_id, self._known_tokens[context_id]
                )
            except CapacityError:
                failed += 1
            else:
                ingests += 1
                replication_bytes += getattr(report, "replicated_bytes", 0.0)
        return ingests, failed, replication_bytes

    def _resident(self, context_id: str) -> bool:
        backend = self.backend
        if isinstance(backend, ClusterBackend):
            return context_id in backend.frontend.cluster
        return context_id in backend.engine.store


def serve(
    spec: ServingSpec,
    requests: Sequence[ServeRequest] | None = None,
    *,
    workload=None,
    num_requests: int | None = None,
    admission: AdmissionPolicy | None = None,
    backend: str | None = None,
    tracer: Tracer | None = None,
    **driver_kwargs,
) -> RunReport:
    """One-call serving: build the spec's backend, drive a workload, report.

    Pass either ``requests`` (explicit :class:`ServeRequest` objects) or
    ``workload`` (+ ``num_requests``) for a generated arrival process.
    ``backend`` optionally forces the adapter kind (``"single"`` /
    ``"concurrent"`` / ``"cluster"``).  A ``tracer`` records the run's full
    telemetry and rides back on ``report.telemetry``.

    Example
    -------
    >>> report = serve(
    ...     ServingSpec(concurrency=8),
    ...     workload=WorkloadGenerator(num_contexts=20),
    ...     num_requests=100,
    ... )  # doctest: +SKIP
    >>> report.ttft.p95  # doctest: +SKIP
    """
    if (requests is None) == (workload is None):
        raise ValueError("pass exactly one of requests= or workload=")
    built = build_backend(spec, kind=backend)
    driver = Driver(
        built,
        workload if workload is not None else list(requests),
        admission=admission,
        tracer=tracer,
        **driver_kwargs,
    )
    return driver.run(num_requests)

"""Unified request/response/report shapes of the serving API.

Every backend — single-node sequential, event-driven concurrent, cluster —
speaks the same three objects:

* :class:`ServeRequest` — one query (context, question, arrival time, task,
  SLO), the submission unit of :meth:`~repro.serving.api.backends.Backend.submit`;
* :class:`ServeResponse` — the answer plus the *union* of every field the
  historical response subclasses drifted apart on (queueing breakdown, cluster
  routing, tier, transfer accounting).  Fields that do not apply to a backend
  stay at their neutral defaults, so all backends populate the same schema;
* :class:`RunReport` — the aggregate outcome of a run: latency and queueing
  distributions, hit/tier/failover counts, shed requests, arrival-process
  rates, storage economics and per-node summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ...metrics.cluster import (
    EMPTY_LATENCY_SUMMARY,
    LatencySummary,
    NodeSummary,
    TierState,
    slo_attainment,
    storage_cost_per_request,
    summarize_latencies,
)
from ...metrics.system import QueueingTTFTBreakdown
from ..pipeline import QueryResponse

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .spec import ServingSpec

__all__ = ["ServeRequest", "ServeResponse", "RunReport", "EMPTY_LATENCIES"]

#: Back-compat alias; the canonical constant lives in :mod:`repro.metrics`.
EMPTY_LATENCIES = EMPTY_LATENCY_SUMMARY


@dataclass(frozen=True)
class ServeRequest:
    """One query submitted to a serving backend.

    ``num_tokens`` is required for contexts that were never ingested (the
    text fallback needs the length); for ingested contexts it is ignored.
    ``session_id`` marks the request as part of a chat session; the fleet's
    sticky dispatch keeps a session's GPU work on one worker.

    Example
    -------
    >>> request = ServeRequest("doc-1", "what changed?", arrival_s=0.5, session_id="chat-7")
    >>> request.arrival_s
    0.5
    """

    context_id: str
    question: str
    arrival_s: float = 0.0
    num_tokens: int | None = None
    task: str = "qa_accuracy"
    slo_s: float | None = None
    session_id: str | None = None

    def __post_init__(self) -> None:
        if not self.context_id:
            raise ValueError("context_id must be non-empty")
        if self.arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")

    @classmethod
    def from_workload(cls, request, slo_s: float | None = None) -> "ServeRequest":
        """Adapt a :class:`~repro.cluster.workload.Request` to the API shape."""
        return cls(
            context_id=request.context_id,
            question=request.question,
            arrival_s=request.arrival_s,
            num_tokens=request.num_tokens,
            slo_s=slo_s,
        )


@dataclass
class ServeResponse(QueryResponse):
    """Query response with the unified field set of all three backends.

    This collapses the field drift between the historical
    ``ClusterQueryResponse`` (routing fields) and ``ConcurrentQueryResponse``
    (event-schedule fields): both are now thin subclasses of this class, and
    every backend fills the same schema.

    Example
    -------
    >>> responses = backend.run()  # doctest: +SKIP
    >>> responses[0].ttft_s, responses[0].used_kv_cache  # doctest: +SKIP
    """

    #: Node that served the KV bitstreams (None for text or single-node runs).
    served_by: str | None = None
    #: The primary replica was down and a backup served the request.
    failed_over: bool = False
    #: Nodes the lookup touched, in order (empty outside cluster runs).
    attempted_node_ids: tuple[str, ...] = ()
    #: Simulated arrival / first-token times (zero under sequential serving
    #: unless the caller supplied arrivals).
    arrival_s: float = 0.0
    finish_s: float = 0.0
    #: Tier the serving replica held the context in (None for the text path).
    served_tier: str | None = None
    #: Serialized cold-tier read time inside the TTFT's transfer component.
    tier_transfer_s: float = 0.0
    #: The request was answered off the degraded path: text re-prefill of a
    #: known-but-unreachable context, or a retry-exhausted read at a cheaper
    #: codec level.  (The §7.3 short-context text preference is NOT degraded.)
    degraded: bool = False
    #: Why the response degraded ("node_down", "corruption", "timeout", ...).
    degrade_cause: str | None = None
    #: Retry attempts the replica read consumed before serving.
    retries: int = 0
    #: A hedged read was launched for this request.
    hedged: bool = False

    @property
    def queueing_s(self) -> float:
        """Time spent waiting for admission, the link queue and the GPU queue."""
        ttft = self.ttft
        return ttft.queueing_s if isinstance(ttft, QueueingTTFTBreakdown) else 0.0

    @classmethod
    def upgrade(cls, response: QueryResponse, **extra) -> "ServeResponse":
        """Lift any (possibly legacy) query response into the unified shape.

        Fields already present on ``response`` are carried over; ``extra``
        overrides or supplies the rest.
        """
        from dataclasses import fields as dc_fields

        values = {f.name: getattr(response, f.name) for f in dc_fields(QueryResponse)}
        # Legacy subclasses may carry some unified fields without being one.
        for name in (
            "served_by",
            "failed_over",
            "attempted_node_ids",
            "arrival_s",
            "finish_s",
            "served_tier",
            "tier_transfer_s",
            "degraded",
            "degrade_cause",
            "retries",
            "hedged",
        ):
            if hasattr(response, name):
                values[name] = getattr(response, name)
        values.update(extra)
        return cls(**values)


@dataclass
class RunReport:
    """Aggregate outcome of one serving run, identical across backends.

    Example
    -------
    >>> report = serve(ServingSpec(), requests=requests)  # doctest: +SKIP
    >>> report.ttft.p50, report.slo_attainment  # doctest: +SKIP
    """

    num_requests: int
    ttft: LatencySummary
    #: Queueing-delay distribution (all zeros under sequential serving).
    queueing: LatencySummary | None
    slo_s: float | None
    slo_attainment: float | None
    kv_served: int
    text_served: int
    failovers: int
    #: Requests the admission policy refused (open-loop driver only).
    shed: int = 0
    hard_failures: int = 0
    ingests: int = 0
    failed_ingests: int = 0
    replication_bytes: float = 0.0
    query_bytes: float = 0.0
    total_evictions: int = 0
    #: Tier traffic (zeros on single-tier topologies).
    hot_served: int = 0
    cold_served: int = 0
    demotions: int = 0
    promotions: int = 0
    hot_bytes: float = 0.0
    cold_bytes: float = 0.0
    #: Appendix-E economics over the run's resident bytes and traffic.
    storage_cost_usd_per_month: float = 0.0
    cost_usd_per_request: float = 0.0
    #: Arrival-process view (meaningful for arrival-driven runs): span of the
    #: arrival process, offered vs served rates.
    duration_s: float = 0.0
    offered_rate_rps: float = 0.0
    throughput_rps: float = 0.0
    responses: list[ServeResponse] = field(default_factory=list)
    node_summaries: list[NodeSummary] = field(default_factory=list)
    spec: "ServingSpec | None" = None
    #: The :class:`~repro.telemetry.trace.Tracer` of a traced run (``None``
    #: on untraced runs); export it with ``repro.telemetry.write_chrome_trace``.
    telemetry: object | None = None
    #: Windowed view of the run (a :class:`~repro.telemetry.timeseries.
    #: TimeSeriesRecorder`); ``None`` when the backend was driven without one.
    timeseries: object | None = None
    #: Fired :class:`~repro.telemetry.slo.Alert` objects, ordered by fire time.
    alerts: list = field(default_factory=list)
    #: Findings of the runtime sanitizers (a
    #: :class:`~repro.simcheck.sanitizers.SimcheckReport`); ``None`` unless
    #: the driver ran with ``simcheck=`` enabled.
    simcheck: object | None = None
    #: Responses served off the degraded path (cheaper level / forced text).
    degraded: int = 0
    #: Text fallbacks of *known* contexts by cause ("node_down", "corruption",
    #: "timeout", "evicted"); the §7.3 short-context preference not included.
    fallback_causes: dict = field(default_factory=dict)
    #: Request indices where the driver closed a simulation segment (topology
    #: or fault events).  Queueing state resets at each boundary — exclude
    #: windows spanning one from fine-grained latency analysis.
    segment_boundaries: tuple = ()
    #: Simulated-clock instants of those boundaries (same order).  Resource
    #: spans from before a boundary may overlap spans after it — backlog does
    #: not carry across segments — so span-level checks partition here.
    segment_boundary_times_s: tuple = ()
    #: :class:`~repro.faults.resilience.ResilienceReport` of a faulted (or
    #: resilience-enabled) run; ``None`` otherwise.
    resilience: object | None = None

    # ------------------------------------------------------------------ ratios
    @property
    def hit_ratio(self) -> float:
        """Fraction of *served* requests answered from the KV cache."""
        served = self.kv_served + self.text_served
        return self.kv_served / served if served else 0.0

    @property
    def hot_hit_ratio(self) -> float:
        served = self.kv_served + self.text_served
        return self.hot_served / served if served else 0.0

    @property
    def cold_hit_ratio(self) -> float:
        served = self.kv_served + self.text_served
        return self.cold_served / served if served else 0.0

    @property
    def shed_ratio(self) -> float:
        """Fraction of offered requests the admission policy refused."""
        return self.shed / self.num_requests if self.num_requests else 0.0

    @property
    def bytes_moved(self) -> float:
        return self.replication_bytes + self.query_bytes

    # ---------------------------------------------------------------- assembly
    @classmethod
    def from_responses(
        cls,
        responses: Sequence[ServeResponse],
        *,
        spec: "ServingSpec | None" = None,
        slo_s: float | None = None,
        shed: int = 0,
        hard_failures: int = 0,
        ingests: int = 0,
        failed_ingests: int = 0,
        replication_bytes: float = 0.0,
        total_evictions: int = 0,
        tier: TierState | None = None,
        node_summaries: Sequence[NodeSummary] = (),
        mean_context_tokens: int = 0,
        min_duration_s: float = 0.0,
        cost_model=None,
    ) -> "RunReport":
        """Assemble the report shared by every backend and the driver.

        ``tier`` carries the *delta* of demotions/promotions over the run plus
        the bytes resident when it ended; the storage-economics fields price
        those resident bytes against the run's traffic (Appendix E prices).
        """
        from ...storage.tiered import COLD, HOT

        responses = list(responses)
        ttfts = [r.ttft_s for r in responses]
        kv_served = sum(1 for r in responses if r.used_kv_cache)
        text_served = len(responses) - kv_served
        degraded = sum(1 for r in responses if getattr(r, "degraded", False))
        fallback_causes: dict[str, int] = {}
        for r in responses:
            cause = getattr(r, "degrade_cause", None)
            if cause is not None:
                fallback_causes[cause] = fallback_causes.get(cause, 0) + 1
        hot_served = sum(1 for r in responses if r.served_tier == HOT)
        cold_served = sum(1 for r in responses if r.served_tier == COLD)
        tier = tier or TierState(0, 0, 0.0, 0.0)
        num_requests = len(responses) + shed + hard_failures
        finishes = [r.finish_s for r in responses if r.finish_s > 0.0]
        arrivals = [r.arrival_s for r in responses]
        duration = max(finishes) if finishes else (max(arrivals) if arrivals else 0.0)
        # Shed arrivals leave no response but still stretch the offered span.
        duration = max(duration, min_duration_s)
        cost_per_request = (
            storage_cost_per_request(
                tier.hot_bytes,
                tier.cold_bytes,
                len(responses),
                reprefill_fraction=text_served / len(responses) if responses else 0.0,
                mean_context_tokens=mean_context_tokens,
                cost_model=cost_model,
            )
            if responses
            else 0.0
        )
        model = cost_model or cls._default_cost_model()
        return cls(
            num_requests=num_requests,
            ttft=summarize_latencies(ttfts) if ttfts else EMPTY_LATENCIES,
            queueing=(
                summarize_latencies([r.queueing_s for r in responses])
                if responses
                else None
            ),
            slo_s=slo_s,
            slo_attainment=(
                slo_attainment(ttfts, slo_s) if slo_s is not None and ttfts else None
            ),
            kv_served=kv_served,
            text_served=text_served,
            failovers=sum(1 for r in responses if r.failed_over),
            shed=shed,
            hard_failures=hard_failures,
            ingests=ingests,
            failed_ingests=failed_ingests,
            replication_bytes=replication_bytes,
            query_bytes=sum(r.transmitted_bytes for r in responses),
            total_evictions=total_evictions,
            hot_served=hot_served,
            cold_served=cold_served,
            demotions=tier.demotions,
            promotions=tier.promotions,
            hot_bytes=tier.hot_bytes,
            cold_bytes=tier.cold_bytes,
            storage_cost_usd_per_month=model.monthly_storage_cost(
                tier.hot_bytes, tier.cold_bytes
            ),
            cost_usd_per_request=cost_per_request,
            duration_s=duration,
            offered_rate_rps=num_requests / duration if duration > 0 else 0.0,
            throughput_rps=len(responses) / duration if duration > 0 else 0.0,
            responses=responses,
            node_summaries=list(node_summaries),
            spec=spec,
            degraded=degraded,
            fallback_causes=fallback_causes,
        )

    @staticmethod
    def _default_cost_model():
        from ...storage.cost import TieredCostModel

        return TieredCostModel()

    # ------------------------------------------------------------------ output
    def format_table(self) -> str:
        """Human-readable run summary (one block, plus one line per node)."""
        lines = [
            f"requests          {self.num_requests} "
            f"(kv={self.kv_served}, text={self.text_served}, shed={self.shed}, "
            f"failovers={self.failovers}, hard_failures={self.hard_failures})",
            f"hit ratio         {self.hit_ratio:.3f}",
            f"TTFT              p50={self.ttft.p50_s:.3f}s p95={self.ttft.p95_s:.3f}s "
            f"p99={self.ttft.p99_s:.3f}s mean={self.ttft.mean_s:.3f}s",
            f"ingests           {self.ingests} "
            f"({self.replication_bytes / 1e6:.1f} MB replicated, "
            f"{self.failed_ingests} failed)",
            f"evictions         {self.total_evictions}",
            f"bytes moved       {self.bytes_moved / 1e6:.1f} MB "
            f"({self.query_bytes / 1e6:.1f} MB streamed to queries)",
        ]
        if self.duration_s > 0:
            lines.append(
                f"arrivals          {self.duration_s:.2f}s span, "
                f"offered {self.offered_rate_rps:.2f} req/s, "
                f"served {self.throughput_rps:.2f} req/s"
            )
        if self.queueing is not None and self.queueing.max_s > 0:
            lines.append(
                f"queueing delay    p50={self.queueing.p50_s:.3f}s "
                f"p95={self.queueing.p95_s:.3f}s mean={self.queueing.mean_s:.3f}s"
            )
        if self.cold_served or self.demotions or self.promotions or self.cold_bytes:
            lines.append(
                f"tiers             hot={self.hot_served} cold={self.cold_served} "
                f"demotions={self.demotions} promotions={self.promotions} "
                f"(hot {self.hot_bytes / 1e6:.1f} MB, cold {self.cold_bytes / 1e6:.1f} MB)"
            )
        if self.hot_bytes or self.cold_bytes:
            lines.append(
                f"cost              ${self.storage_cost_usd_per_month:.4f}/month stored, "
                f"${self.cost_usd_per_request:.6f}/request"
            )
        if self.degraded or self.fallback_causes:
            causes = ", ".join(
                f"{cause}={count}"
                for cause, count in sorted(self.fallback_causes.items())
            )
            lines.append(
                f"degraded          {self.degraded}"
                + (f" (causes: {causes})" if causes else "")
            )
        if self.segment_boundaries:
            boundaries = ", ".join(str(index) for index in self.segment_boundaries)
            lines.append(f"segments          reset at request indices {boundaries}")
        if self.slo_s is not None and self.slo_attainment is not None:
            lines.append(
                f"SLO               {self.slo_attainment * 100.0:.1f}% "
                f"within {self.slo_s:.2f}s"
            )
        if self.resilience is not None:
            lines.append(self.resilience.format_table())
        if self.timeseries is not None:
            windows = self.timeseries.windows()
            if windows:
                lines.append(
                    f"timeseries        {len(windows)} windows of "
                    f"{windows[0].width_s:g}s"
                )
        if self.alerts:
            for alert in self.alerts:
                resolved = (
                    f"resolved {alert.resolved_at_s:.2f}s"
                    if alert.resolved_at_s is not None
                    else "still active"
                )
                lines.append(
                    f"alert             [{alert.severity}] {alert.name} "
                    f"fired {alert.fired_at_s:.2f}s, {resolved}"
                )
        for node in self.node_summaries:
            state = "up" if node.up else "DOWN"
            lines.append(
                f"  {node.node_id:<10} {state:<5} routed={node.requests_routed:<5} "
                f"hit_ratio={node.hit_ratio:.3f} evictions={node.evictions:<4} "
                f"resident={node.contexts_resident} ({node.stored_bytes / 1e6:.1f} MB)"
            )
        return "\n".join(lines)

"""The declarative serving specification.

A :class:`ServingSpec` is the single description of *what to serve with*:
model, codec levels, store topology (single node / tiered nodes / cluster),
node count and replication, tier sizes and link speeds, expected concurrency
and admission limits.  It is frozen and fully validated at construction, so a
spec that constructs is a spec every backend can build — the error surface
lives here, not spread over three constructors.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from ...core.config import CacheGenConfig
from ...llm.compute_model import A40, GPUSpec
from ...network.link import NetworkLink
from ..fleet.autoscale import AutoscaleSpec
from ..fleet.dispatch import DISPATCH_POLICIES

__all__ = ["ServingSpec", "TOPOLOGIES", "EVICTION_POLICIES", "PLACEMENT_POLICIES"]

#: Store topologies a spec can declare.
TOPOLOGIES = ("single", "tiered", "cluster")
#: Known eviction-policy names (mirrors :func:`repro.storage.eviction.make_policy`).
EVICTION_POLICIES = ("lru", "lfu", "cost")
#: Known tier-placement names (mirrors :func:`repro.storage.tiered.make_placement`).
PLACEMENT_POLICIES = ("hot", "cost")


@dataclass(frozen=True)
class ServingSpec:
    """Declarative description of a serving deployment.

    Parameters
    ----------
    model:
        Serving model name (or a :class:`~repro.llm.model_config.ModelConfig`).
    topology:
        ``"single"`` — one engine, one store, one link;
        ``"tiered"`` — a cluster whose nodes each run a hot tier over a cold
        (disk/object-store) tier behind a tier link;
        ``"cluster"`` — a sharded, replicated cluster of single-tier nodes.
    num_nodes / replication:
        Cluster shape (must be 1/1 for the single topology).
    max_bytes_per_node / cold_bytes_per_node:
        Per-node tier capacities.  The tiered topology requires both: a cold
        tier only demotes from a *bounded* hot tier.
    eviction_policy / placement:
        Policy names; validated against the known registries.
    chunk_tokens / levels / default_level / config:
        Codec settings.  ``levels`` restricts the configured encoding levels
        to the named subset (order preserved); ``config`` supplies a full
        :class:`~repro.core.config.CacheGenConfig` the conveniences refine.
    bandwidth_gbps / node_bandwidths_gbps / tier_bandwidth_gbps / text_bandwidth_gbps:
        Link speeds: the serving link (or one per node for heterogeneous
        clusters), the per-node tier link, and the document-store link used by
        the text fallback.
    link:
        Escape hatch: a fully custom :class:`~repro.network.NetworkLink` for
        the single-node serving link (e.g. a random or stepped trace).
    concurrency:
        Declared concurrency of the workload.  ``1`` serves sequentially;
        ``> 1`` selects the event-driven engine, where queueing emerges from
        the shared links and GPU run queue.
    max_decode_batch / batch_overhead:
        Continuous-batching settings of the event-driven engine.
    admission_limit:
        Cap on requests in flight inside the event engine (excess arrivals
        queue FIFO).  Load *shedding* policies are pluggable on the driver.
    gpu_workers:
        GPU workers behind the event engine's compute stage.  ``1`` (the
        default) keeps the original single-scheduler path bit-for-bit;
        ``> 1`` builds a :class:`~repro.serving.fleet.pool.GpuWorkerPool`.
        Requires ``concurrency > 1`` — a sequential run has no queueing for
        a fleet to absorb.
    dispatch_policy:
        How fleet tasks are routed to workers: ``"least-loaded"``,
        ``"locality"`` (same-context decodes co-batch on one worker), or
        ``"sticky"`` (chat sessions pin to a worker).
    autoscale:
        Optional :class:`~repro.serving.fleet.autoscale.AutoscaleSpec`; the
        pool then grows on queue-depth buildup and shrinks after sustained
        idle, with warm-up modeled in simulated time.
    slo_s / adaptive:
        TTFT SLO reported on runs; ``adaptive`` hands it to each query so the
        streamer's SLO-aware adapter can degrade encoding levels.
    resilience:
        Optional :class:`~repro.faults.ResiliencePolicy` enabling the
        self-healing layer on cluster reads: retries with seeded-jitter
        backoff, hedged replica reads, per-node circuit breakers, background
        re-replication, graceful degradation.  Cluster topologies only (a
        single node has no replicas to retry against); ``None`` (the
        default) keeps the fault-free fast path byte-identical.
    base_quality:
        Optional per-task lossless quality overrides of the quality surrogate.

    Example
    -------
    >>> spec = ServingSpec(
    ...     topology="cluster", num_nodes=4, replication=2,
    ...     concurrency=8, gpu_workers=2, dispatch_policy="locality",
    ... )
    >>> spec.gpu_workers
    2
    """

    model: object = "mistral-7b"
    topology: str = "single"
    num_nodes: int = 1
    replication: int = 1
    max_bytes_per_node: float | None = None
    cold_bytes_per_node: float | None = None
    eviction_policy: str = "lru"
    placement: str = "hot"
    chunk_tokens: int | None = None
    levels: tuple[str, ...] | None = None
    default_level: str | None = None
    config: CacheGenConfig | None = None
    bandwidth_gbps: float = 3.0
    node_bandwidths_gbps: tuple[float, ...] | None = None
    tier_bandwidth_gbps: float = 1.0
    text_bandwidth_gbps: float | None = None
    link: NetworkLink | None = None
    concurrency: int = 1
    max_decode_batch: int = 16
    batch_overhead: float = 0.2
    admission_limit: int | None = None
    gpu_workers: int = 1
    dispatch_policy: str = "least-loaded"
    autoscale: AutoscaleSpec | None = None
    slo_s: float | None = None
    adaptive: bool = True
    gpu: GPUSpec = A40
    base_quality: Mapping[str, float] | None = None
    resilience: object | None = None

    # -------------------------------------------------------------- validation
    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; expected one of {TOPOLOGIES}"
            )
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if self.replication < 1:
            raise ValueError("replication must be at least 1")
        if self.replication > self.num_nodes:
            raise ValueError(
                f"replication={self.replication} exceeds num_nodes={self.num_nodes}"
            )
        if self.topology == "single" and (self.num_nodes != 1 or self.replication != 1):
            raise ValueError("the single topology has exactly one node, one replica")
        if self.eviction_policy not in EVICTION_POLICIES:
            raise ValueError(
                f"unknown eviction policy {self.eviction_policy!r}; "
                f"expected one of {EVICTION_POLICIES}"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"unknown placement policy {self.placement!r}; "
                f"expected one of {PLACEMENT_POLICIES}"
            )
        if self.cold_bytes_per_node is not None:
            if self.cold_bytes_per_node <= 0:
                raise ValueError("cold_bytes_per_node must be positive")
            if self.max_bytes_per_node is None:
                raise ValueError(
                    "a cold tier demotes from a bounded hot tier: "
                    "cold_bytes_per_node requires max_bytes_per_node"
                )
            if self.topology == "single":
                raise ValueError(
                    "the single topology has no tier link; use topology='tiered'"
                )
        if self.topology == "tiered" and self.cold_bytes_per_node is None:
            raise ValueError(
                "the tiered topology needs a cold tier (set cold_bytes_per_node)"
            )
        if self.max_bytes_per_node is not None and self.max_bytes_per_node <= 0:
            raise ValueError("max_bytes_per_node must be positive")
        if self.chunk_tokens is not None and self.chunk_tokens <= 0:
            raise ValueError("chunk_tokens must be positive")
        if self.bandwidth_gbps <= 0 or self.tier_bandwidth_gbps <= 0:
            raise ValueError("link bandwidths must be positive")
        if self.text_bandwidth_gbps is not None and self.text_bandwidth_gbps <= 0:
            raise ValueError("text_bandwidth_gbps must be positive")
        if self.node_bandwidths_gbps is not None:
            if len(self.node_bandwidths_gbps) != self.num_nodes:
                raise ValueError("node_bandwidths_gbps must name one speed per node")
            if any(b <= 0 for b in self.node_bandwidths_gbps):
                raise ValueError("node bandwidths must be positive")
        if self.link is not None and self.topology != "single":
            raise ValueError("a custom link only applies to the single topology")
        if self.concurrency < 1:
            raise ValueError("concurrency must be at least 1")
        if self.max_decode_batch < 1:
            raise ValueError("max_decode_batch must be at least 1")
        if self.batch_overhead < 0:
            raise ValueError("batch_overhead must be non-negative")
        if self.admission_limit is not None and self.admission_limit <= 0:
            raise ValueError("admission_limit must be positive")
        if self.gpu_workers < 1:
            raise ValueError("gpu_workers must be at least 1")
        if self.dispatch_policy not in DISPATCH_POLICIES:
            raise ValueError(
                f"unknown dispatch policy {self.dispatch_policy!r}; "
                f"expected one of {DISPATCH_POLICIES}"
            )
        fleet_engaged = (
            self.gpu_workers > 1
            or self.autoscale is not None
            or self.dispatch_policy != "least-loaded"
        )
        if fleet_engaged and self.concurrency == 1:
            raise ValueError(
                "fleet serving (gpu_workers/dispatch_policy/autoscale) requires "
                "concurrency > 1 — a sequential run has no queueing to absorb"
            )
        if self.autoscale is not None and not (
            self.autoscale.min_workers <= self.gpu_workers <= self.autoscale.max_workers
        ):
            raise ValueError(
                f"gpu_workers={self.gpu_workers} outside the autoscale bounds "
                f"[{self.autoscale.min_workers}, {self.autoscale.max_workers}]"
            )
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        if self.resilience is not None:
            from ...faults.resilience import ResiliencePolicy

            if not isinstance(self.resilience, ResiliencePolicy):
                raise TypeError("resilience must be a ResiliencePolicy (or None)")
            if self.topology == "single":
                raise ValueError(
                    "resilience policies act on cluster replica reads; "
                    "the single topology has no replicas to retry against"
                )
        # Codec levels are validated by actually resolving the config once.
        self.resolved_config()

    # ------------------------------------------------------------------- codec
    def resolved_config(self) -> CacheGenConfig:
        """The codec configuration this spec declares.

        Starts from ``config`` (or the paper defaults), then applies the
        ``chunk_tokens`` / ``levels`` / ``default_level`` conveniences.
        """
        config = self.config or CacheGenConfig()
        if self.chunk_tokens is not None:
            config = config.replace(chunk_tokens=self.chunk_tokens)
        if self.levels is not None:
            known = {level.name: level for level in config.levels}
            unknown = [name for name in self.levels if name not in known]
            if unknown:
                raise ValueError(
                    f"unknown encoding level(s) {unknown}; configured: {sorted(known)}"
                )
            chosen = tuple(known[name] for name in self.levels)
            names = [level.name for level in chosen]
            keep = (
                config.default_level.name
                if config.default_level.name in names
                else names[0]
            )
            config = config.replace(levels=chosen, default_level_index=names.index(keep))
        if self.default_level is not None:
            names = [level.name for level in config.levels]
            if self.default_level not in names:
                raise ValueError(
                    f"unknown default level {self.default_level!r}; configured: {names}"
                )
            config = config.replace(default_level_index=names.index(self.default_level))
        return config

    # ----------------------------------------------------------------- backend
    @property
    def backend_kind(self) -> str:
        """Which backend adapter serves this spec (``single`` / ``concurrent``
        / ``cluster``)."""
        if self.topology != "single":
            return "cluster"
        return "single" if self.concurrency == 1 else "concurrent"

    def with_(self, **changes) -> "ServingSpec":
        """A modified copy (convenience over :func:`dataclasses.replace`)."""
        return replace(self, **changes)

"""Execution backends behind the unified serving API.

A :class:`Backend` turns a :class:`~repro.serving.api.spec.ServingSpec` into a
running serving stack and speaks the unified request/response shapes:

* :class:`SingleNodeBackend` — the sequential single-node engine (one store,
  one link, one query at a time);
* :class:`ConcurrentBackend` — the event-driven engine over a single node:
  staged requests contend for the shared link and GPU run queue;
* :class:`ClusterBackend` — the sharded/replicated (optionally tiered)
  cluster frontend, served sequentially or through the event engine.

All three expose the same protocol — ``ingest`` / ``submit`` / ``run`` /
``report`` — and return :class:`~repro.serving.api.types.ServeResponse`
objects with one schema, so experiments swap backends without re-plumbing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

from ...metrics.cluster import NodeSummary, TierState, tier_state
from ...network.bandwidth import ConstantTrace, gbps
from ...network.link import NetworkLink
from ...telemetry.slo import AlertEngine, SLOObjective
from ...telemetry.timeseries import TimeSeriesRecorder, auto_window_s
from ...telemetry.trace import Tracer, emit_breakdown_spans
from .._compat import api_construction
from ..engine import ContextLoadingEngine
from ..pipeline import IngestReport
from .spec import ServingSpec
from .types import RunReport, ServeRequest, ServeResponse

if TYPE_CHECKING:  # pragma: no cover - types only
    from ...cluster.frontend import ClusterFrontend

__all__ = [
    "Backend",
    "SingleNodeBackend",
    "ConcurrentBackend",
    "ClusterBackend",
    "build_backend",
]


def _constant_link(bandwidth_gbps: float) -> NetworkLink:
    return NetworkLink(ConstantTrace(gbps(bandwidth_gbps)))


@runtime_checkable
class Backend(Protocol):
    """What every execution backend must speak."""

    spec: ServingSpec

    def ingest(self, context_id: str, num_tokens: int) -> IngestReport:
        """Prefill + encode + store a context (offline path, not simulated)."""
        ...

    def submit(self, request: ServeRequest) -> int:
        """Stage a request; served on the next :meth:`run`."""
        ...

    def run(self) -> list[ServeResponse]:
        """Serve all staged requests; responses in staging order."""
        ...

    def report(self, responses: Sequence[ServeResponse], **counters) -> RunReport:
        """Assemble the unified run report over served responses."""
        ...

    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Wire a telemetry tracer through the backend's engines and stores."""
        ...

    def attach_simcheck(self, monitor) -> None:
        """Wire a simcheck monitor (sanitized clocks) through the backend."""
        ...

    # ------------------------------------------------------------- state taps
    def total_evictions(self) -> int: ...

    def tier_counters(self) -> TierState: ...

    def node_summaries(self) -> list[NodeSummary]: ...


class _EngineBackend:
    """Shared submission/report plumbing of the three adapters."""

    spec: ServingSpec

    #: The run's :class:`~repro.faults.ResilienceManager` (``None`` unless the
    #: spec carries a resilience policy or the driver injects faults).
    resilience = None

    def __init__(self, spec: ServingSpec) -> None:
        self.spec = spec
        self.tracer: Tracer | None = None
        self.simcheck = None
        self._staged: list[ServeRequest] = []

    # --------------------------------------------------------------- telemetry
    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Wire a tracer through the backend (subclasses extend the wiring)."""
        self.tracer = tracer

    def attach_simcheck(self, monitor) -> None:
        """Record the monitor; event-driven subclasses also take its clocks."""
        self.simcheck = monitor

    def _active_tracer(self) -> Tracer | None:
        tracer = self.tracer
        return tracer if tracer is not None and tracer.enabled else None

    @staticmethod
    def _trace_store(store, tracer: Tracer | None, track: str) -> None:
        """Point a KV store (and its cold tier, if any) at the tracer."""
        store.tracer = tracer
        store.trace_track = track
        hot = getattr(store, "hot", None)
        if hot is not None:  # a TieredKVStore wraps an inner hot store
            hot.tracer = tracer
            hot.trace_track = track

    # ------------------------------------------------------------------ submit
    def submit(self, request: ServeRequest) -> int:
        self._staged.append(request)
        return len(self._staged) - 1

    def _take_staged(self) -> list[ServeRequest]:
        if not self._staged:
            raise ValueError("no requests submitted")
        staged, self._staged = self._staged, []
        return staged

    def _serve_sequential(self, staged, query_fn, extra_fn=None) -> list[ServeResponse]:
        """One-at-a-time serving in arrival order, responses in staging order.

        ``query_fn`` maps a :class:`ServeRequest` to the wrapped engine's
        response; ``extra_fn`` may derive additional unified fields from it.
        """
        tracer = self._active_tracer()
        resilience = self.resilience
        order = sorted(range(len(staged)), key=lambda i: (staged[i].arrival_s, i))
        responses: list[ServeResponse | None] = [None] * len(staged)
        for i in order:
            request = staged[i]
            if resilience is not None:
                # Breaker timers and repair queues run on arrival time.
                resilience.now = max(resilience.now, request.arrival_s)
            if tracer is not None:
                tracer.advance_to(request.arrival_s)
            response = query_fn(request)
            extras = {
                "arrival_s": request.arrival_s,
                "finish_s": request.arrival_s + response.ttft_s,
            }
            if extra_fn is not None:
                extras.update(extra_fn(response))
            upgraded = ServeResponse.upgrade(response, **extras)
            responses[i] = upgraded
            if tracer is not None:
                root = emit_breakdown_spans(
                    tracer,
                    label=request.context_id,
                    arrival_s=request.arrival_s,
                    ttft=response.ttft,
                )
                root.annotate(used_kv_cache=response.used_kv_cache)
                tracer.metrics.histogram("request_ttft_s", "per-request TTFT").observe(
                    response.ttft_s
                )
                tracer.metrics.counter("requests_served", "requests served per path").inc(
                    1, path="kv" if response.used_kv_cache else "text"
                )
                tracer.advance_to(upgraded.finish_s)
        return [response for response in responses if response is not None]

    # ------------------------------------------------------------------ report
    def report(
        self,
        responses: Sequence[ServeResponse],
        *,
        slo_s: float | None = None,
        shed: int = 0,
        hard_failures: int = 0,
        ingests: int = 0,
        failed_ingests: int = 0,
        replication_bytes: float = 0.0,
        evictions_before: int = 0,
        tier_before: TierState | None = None,
        mean_context_tokens: int = 0,
        min_duration_s: float = 0.0,
        shed_times: Sequence[float] = (),
        window_s: float | None = None,
        objectives: Sequence[SLOObjective] = (),
        alert_rules=None,
    ) -> RunReport:
        """Unified report; ``*_before`` snapshots make the counters per-run."""
        tier_now = self.tier_counters()
        before = tier_before or TierState(0, 0, 0.0, 0.0)
        report = RunReport.from_responses(
            responses,
            spec=self.spec,
            slo_s=slo_s if slo_s is not None else self.spec.slo_s,
            shed=shed,
            hard_failures=hard_failures,
            ingests=ingests,
            failed_ingests=failed_ingests,
            replication_bytes=replication_bytes,
            total_evictions=self.total_evictions() - evictions_before,
            tier=TierState(
                demotions=tier_now.demotions - before.demotions,
                promotions=tier_now.promotions - before.promotions,
                hot_bytes=tier_now.hot_bytes,
                cold_bytes=tier_now.cold_bytes,
            ),
            node_summaries=self.node_summaries(),
            mean_context_tokens=mean_context_tokens,
            min_duration_s=min_duration_s,
        )
        if responses or shed_times:
            recorder = TimeSeriesRecorder.from_run(
                responses,
                window_s=window_s or auto_window_s(report.duration_s),
                shed_times=shed_times,
                tracer=self._active_tracer(),
                duration_s=report.duration_s,
            )
            report.timeseries = recorder
            report.alerts = AlertEngine(objectives, rules=alert_rules).evaluate(
                recorder.windows()
            )
        return report


class SingleNodeBackend(_EngineBackend):
    """Sequential serving over one :class:`ContextLoadingEngine`."""

    kind = "single"

    def __init__(self, spec: ServingSpec, engine: ContextLoadingEngine | None = None) -> None:
        super().__init__(spec)
        if engine is None:
            with api_construction():
                engine = ContextLoadingEngine(
                    spec.model,
                    link=spec.link or _constant_link(spec.bandwidth_gbps),
                    config=spec.resolved_config(),
                    gpu=spec.gpu,
                    base_quality=(
                        dict(spec.base_quality) if spec.base_quality is not None else None
                    ),
                    store_max_bytes=spec.max_bytes_per_node,
                    store_eviction_policy=spec.eviction_policy,
                )
        self.engine = engine

    def attach_tracer(self, tracer: Tracer | None) -> None:
        super().attach_tracer(tracer)
        self._trace_store(self.engine.store, tracer, "storage:local")

    def ingest(self, context_id: str, num_tokens: int) -> IngestReport:
        return self.engine.ingest(context_id, num_tokens)

    # ---------------------------------------------------------------- topology
    def mark_down(self, node_id: str | None = None) -> None:
        """Crash the node: its store goes dark, queries degrade to text."""
        self.engine.store_up = False

    def mark_up(self, node_id: str | None = None) -> None:
        self.engine.store_up = True

    def run(self) -> list[ServeResponse]:
        from ...storage.tiered import HOT

        def query(request: ServeRequest):
            return self.engine.query(
                request.context_id,
                request.question,
                num_tokens=request.num_tokens,
                task=request.task,
                slo_s=request.slo_s,
            )

        def extras(response):
            out = {"served_tier": HOT if response.used_kv_cache else None}
            if not self.engine.store_up and response.context_id in self.engine.store:
                # The store holds the context but the node is down: this text
                # answer is a degraded one, not a plain miss.
                out["degraded"] = True
                out["degrade_cause"] = "node_down"
            return out

        return self._serve_sequential(self._take_staged(), query, extras)

    # ------------------------------------------------------------- state taps
    def total_evictions(self) -> int:
        return self.engine.store.eviction_count

    def tier_counters(self) -> TierState:
        return TierState(0, 0, float(self.engine.store.storage_bytes()), 0.0)

    def node_summaries(self) -> list[NodeSummary]:
        return []


class ConcurrentBackend(SingleNodeBackend):
    """Event-driven serving over one node: queueing, batching, admission."""

    kind = "concurrent"

    def __init__(self, spec: ServingSpec, engine: ContextLoadingEngine | None = None) -> None:
        from ..concurrent.engine import ConcurrentEngine

        super().__init__(spec, engine=engine)
        with api_construction():
            self._concurrent = ConcurrentEngine(
                self.engine,
                max_decode_batch=spec.max_decode_batch,
                batch_overhead=spec.batch_overhead,
                admission_limit=spec.admission_limit,
                gpu_workers=spec.gpu_workers,
                dispatch_policy=spec.dispatch_policy,
                autoscale=spec.autoscale,
            )

    def attach_tracer(self, tracer: Tracer | None) -> None:
        super().attach_tracer(tracer)
        self._concurrent.tracer = tracer

    def attach_simcheck(self, monitor) -> None:
        super().attach_simcheck(monitor)
        self._concurrent.clock_factory = monitor.make_clock if monitor else None

    def run(self) -> list[ServeResponse]:
        staged = self._take_staged()
        for request in staged:
            self._concurrent.submit(
                request.context_id,
                request.question,
                arrival_s=request.arrival_s,
                num_tokens=request.num_tokens,
                task=request.task,
                slo_s=request.slo_s,
                session_id=request.session_id,
            )
        return list(self._concurrent.run())


class ClusterBackend(_EngineBackend):
    """Cluster serving: sharded, replicated, optionally tiered nodes.

    Sequential when ``spec.concurrency == 1``; otherwise staged requests are
    played through the event-driven engine against the replica links and the
    shared GPU run queue.
    """

    kind = "cluster"

    def __init__(self, spec: ServingSpec, frontend: "ClusterFrontend | None" = None) -> None:
        from ...cluster.frontend import ClusterFrontend

        super().__init__(spec)
        if frontend is None:
            speeds = spec.node_bandwidths_gbps or (spec.bandwidth_gbps,) * spec.num_nodes
            tiered = spec.cold_bytes_per_node is not None
            with api_construction():
                frontend = ClusterFrontend(
                    spec.model,
                    node_links=[_constant_link(speed) for speed in speeds],
                    replication_factor=spec.replication,
                    max_bytes_per_node=spec.max_bytes_per_node,
                    eviction_policy=spec.eviction_policy,
                    cold_bytes_per_node=spec.cold_bytes_per_node,
                    tier_links=(
                        [
                            _constant_link(spec.tier_bandwidth_gbps)
                            for _ in range(spec.num_nodes)
                        ]
                        if tiered
                        else None
                    ),
                    placement=spec.placement,
                    config=spec.resolved_config(),
                    gpu=spec.gpu,
                    base_quality=(
                        dict(spec.base_quality) if spec.base_quality is not None else None
                    ),
                    text_link=(
                        _constant_link(spec.text_bandwidth_gbps)
                        if spec.text_bandwidth_gbps is not None
                        else None
                    ),
                )
        self.frontend = frontend
        if spec.resilience is not None:
            from ...faults.resilience import ResilienceManager

            self.resilience = ResilienceManager(spec.resilience)
            self.frontend.cluster.resilience = self.resilience
        self._concurrent = None
        if spec.concurrency > 1:
            from ..concurrent.engine import ConcurrentEngine

            with api_construction():
                self._concurrent = ConcurrentEngine(
                    frontend,
                    max_decode_batch=spec.max_decode_batch,
                    batch_overhead=spec.batch_overhead,
                    admission_limit=spec.admission_limit,
                    gpu_workers=spec.gpu_workers,
                    dispatch_policy=spec.dispatch_policy,
                    autoscale=spec.autoscale,
                )

    # --------------------------------------------------------------- telemetry
    def attach_tracer(self, tracer: Tracer | None) -> None:
        super().attach_tracer(tracer)
        cluster = self.frontend.cluster
        cluster.tracer = tracer
        for node_id, node in cluster.nodes.items():
            self._trace_store(node.store, tracer, f"storage:{node_id}")
        if self._concurrent is not None:
            self._concurrent.tracer = tracer

    def attach_simcheck(self, monitor) -> None:
        super().attach_simcheck(monitor)
        if self._concurrent is not None:
            self._concurrent.clock_factory = monitor.make_clock if monitor else None

    # ---------------------------------------------------------------- topology
    def mark_down(self, node_id: str) -> None:
        self.frontend.mark_down(node_id)

    def mark_up(self, node_id: str) -> None:
        self.frontend.mark_up(node_id)

    def replicas_for(self, context_id: str) -> list[str]:
        """Node ids holding replicas of a context (public topology tap).

        Examples and tests use this instead of reaching into
        ``backend.frontend.cluster`` internals.
        """
        return list(self.frontend.cluster.replicas_for(context_id))

    # ------------------------------------------------------------------ serve
    def ingest(self, context_id: str, num_tokens: int) -> IngestReport:
        return self.frontend.ingest(context_id, num_tokens)

    def run(self) -> list[ServeResponse]:
        staged = self._take_staged()
        if self._concurrent is None:

            def query(request: ServeRequest):
                return self.frontend.query(
                    request.context_id,
                    request.question,
                    num_tokens=request.num_tokens,
                    task=request.task,
                    slo_s=request.slo_s,
                )

            return self._serve_sequential(staged, query)
        for request in staged:
            self._concurrent.submit(
                request.context_id,
                request.question,
                arrival_s=request.arrival_s,
                num_tokens=request.num_tokens,
                task=request.task,
                slo_s=request.slo_s,
                session_id=request.session_id,
            )
        return list(self._concurrent.run())

    # ------------------------------------------------------------- state taps
    def total_evictions(self) -> int:
        return self.frontend.cluster.total_evictions()

    def tier_counters(self) -> TierState:
        return tier_state(self.frontend.cluster.nodes.values())

    def node_summaries(self) -> list[NodeSummary]:
        return self.frontend.cluster.node_summaries()


def build_backend(spec: ServingSpec, kind: str | None = None) -> Backend:
    """Build the execution backend a spec declares.

    ``kind`` overrides the derived choice (e.g. to force the sequential
    adapter on a spec whose ``concurrency`` is above 1); it must stay
    compatible with the spec's topology.

    Example
    -------
    >>> spec = ServingSpec(topology="cluster", num_nodes=4)
    >>> backend = build_backend(spec)  # kind inferred from the topology
    >>> backend.kind
    'cluster'
    """
    kind = kind or spec.backend_kind
    if kind in ("single", "concurrent") and spec.topology != "single":
        raise ValueError(f"backend kind {kind!r} requires the single topology")
    if kind == "cluster" and spec.topology == "single":
        raise ValueError("the cluster backend requires a tiered or cluster topology")
    if kind == "single":
        return SingleNodeBackend(spec)
    if kind == "concurrent":
        return ConcurrentBackend(spec)
    if kind == "cluster":
        return ClusterBackend(spec)
    raise ValueError(f"unknown backend kind {kind!r}")

"""The concurrent load simulator: requests × links × one GPU, event-driven.

:class:`ConcurrentLoadSimulator` runs a set of requests through the shared
resources: each request walks its :class:`~repro.serving.concurrent.processes.LoadProcess`
stage by stage — wait for its link, transfer, wait for the GPU, compute — so
per-request TTFT decomposes *exactly* into queueing delay (admission + link
wait + GPU wait), transfer time and compute time.  Overlap happens across
requests (one request's transfer runs while another's decode occupies the
GPU), not within a request; the batched decode of co-located requests recoups
what the strict per-request ordering gives up.

This is the engine room shared by the
:class:`~repro.streaming.scheduler.ConcurrentScheduler`, the
:class:`~repro.serving.concurrent.engine.ConcurrentEngine` facade and the
Figure 12 concurrency experiment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque

from ...network.link import NetworkLink, TransferResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from ...telemetry.trace import Tracer
    from ..fleet.autoscale import AutoscaleSpec
    from ..fleet.dispatch import DispatchPolicy
    from ..fleet.pool import GpuWorkerPool
from .events import SimClock
from .processes import TIER_CONFIG, LoadProcess, LoadStage
from .resources import GpuScheduler, GpuTask, LinkChannel

__all__ = ["StageRecord", "RequestTimeline", "ConcurrentLoadSimulator"]


@dataclass(frozen=True)
class StageRecord:
    """Timeline of one completed stage of one request."""

    index: int
    config: str
    gpu_kind: str | None
    num_bytes: float
    enqueued_s: float
    transfer_start_s: float
    transfer_end_s: float
    ready_at_s: float
    link_wait_s: float
    gpu_wait_s: float
    gpu_busy_s: float
    achieved_throughput_bps: float


@dataclass
class RequestTimeline:
    """Everything that happened to one request, with an exact decomposition.

    ``total_s == queueing_s + transfer_s + compute_s`` holds by construction:
    stages run strictly one after another within a request, and every interval
    of a stage is either waiting (admission, link queue, GPU queue), moving
    bytes, or computing.
    """

    request_id: int
    arrival_s: float
    admitted_s: float = 0.0
    finish_s: float = 0.0
    done: bool = False
    stages: list[StageRecord] = field(default_factory=list)

    @property
    def admission_wait_s(self) -> float:
        return self.admitted_s - self.arrival_s

    @property
    def queueing_s(self) -> float:
        """Admission wait plus all link and GPU queueing."""
        return self.admission_wait_s + sum(
            stage.link_wait_s + stage.gpu_wait_s for stage in self.stages
        )

    @property
    def transfer_s(self) -> float:
        return sum(stage.transfer_end_s - stage.transfer_start_s for stage in self.stages)

    @property
    def compute_s(self) -> float:
        return sum(stage.gpu_busy_s for stage in self.stages)

    @property
    def total_s(self) -> float:
        """End-to-end latency from arrival to last stage completion."""
        return self.finish_s - self.arrival_s

    @property
    def total_bytes(self) -> float:
        return sum(stage.num_bytes for stage in self.stages)

    @property
    def served_bytes(self) -> float:
        """Bytes shipped over the serving link (cold-tier reads excluded)."""
        return sum(
            stage.num_bytes for stage in self.stages if stage.config != TIER_CONFIG
        )

    @property
    def tier_transfer_s(self) -> float:
        """Serialized cold-tier read time this request paid."""
        return sum(
            stage.transfer_end_s - stage.transfer_start_s
            for stage in self.stages
            if stage.config == TIER_CONFIG
        )

    @property
    def configs(self) -> list[str]:
        return [stage.config for stage in self.stages]


class _RequestState:
    """Mutable per-request bookkeeping while the simulation runs."""

    def __init__(
        self,
        request_id: int,
        arrival_s: float,
        channel: LinkChannel,
        process: LoadProcess,
        throughput_bps: float,
    ) -> None:
        self.channel = channel
        self.process = process
        self.throughput_bps = throughput_bps
        self.timeline = RequestTimeline(request_id=request_id, arrival_s=arrival_s)


class ConcurrentLoadSimulator:
    """Runs concurrent load processes over shared links and one GPU.

    Parameters
    ----------
    max_decode_batch:
        Cap on the GPU's batched decode launches.
    batch_overhead:
        Marginal per-member cost of a batched decode (see
        :class:`~repro.serving.concurrent.resources.GpuScheduler`).
    admission_limit:
        Maximum number of requests in flight; arrivals beyond it queue and are
        admitted FIFO as earlier requests finish (``None`` means unbounded).
    initial_throughput_bps:
        Throughput assumed for a request's first chunk, before it has measured
        anything (same role as in the single-request streamer).
    gpu_workers:
        GPU workers behind the compute stage.  The default of 1 (with the
        default dispatch and no autoscale) runs the original single
        :class:`~repro.serving.concurrent.resources.GpuScheduler` path,
        event-for-event; anything else builds a
        :class:`~repro.serving.fleet.pool.GpuWorkerPool`.
    dispatch_policy:
        Fleet routing: a policy name (``"least-loaded"`` / ``"locality"`` /
        ``"sticky"``) or a :class:`~repro.serving.fleet.dispatch.DispatchPolicy`
        instance.  Passing an instance always engages the pool, even for one
        worker.
    autoscale:
        Optional :class:`~repro.serving.fleet.autoscale.AutoscaleSpec`; when
        set the pool grows/shrinks with load on the simulated clock.
    tracer:
        Optional :class:`~repro.telemetry.trace.Tracer`; when enabled, the
        link channels and the GPU scheduler it builds record per-transfer /
        per-launch spans, queue-depth samples and busy-time counters.  Track
        names come from :attr:`link_labels` (callers map ``id(link)`` to a
        human-readable label; unlabeled links get ``link-<n>``).  Fleet runs
        add per-worker ``gpu:worker-<i>`` swimlanes and a ``gpu-pool`` track.
    clock_factory:
        Builds the :class:`~repro.serving.concurrent.events.SimClock` for each
        :meth:`run`.  The simcheck sanitizers inject a
        :class:`~repro.simcheck.sanitizers.ClockSanitizer` here to record
        past-time schedules and perturb same-timestamp tie-breaks.
    """

    def __init__(
        self,
        max_decode_batch: int = 16,
        batch_overhead: float = 0.2,
        admission_limit: int | None = None,
        initial_throughput_bps: float = 3e9,
        gpu_workers: int = 1,
        dispatch_policy: "str | DispatchPolicy" = "least-loaded",
        autoscale: "AutoscaleSpec | None" = None,
        tracer: "Tracer | None" = None,
        clock_factory: "Callable[[], SimClock] | None" = None,
    ) -> None:
        if admission_limit is not None and admission_limit < 1:
            raise ValueError("admission_limit must be at least 1 (or None)")
        if initial_throughput_bps <= 0:
            raise ValueError("initial_throughput_bps must be positive")
        if gpu_workers < 1:
            raise ValueError("gpu_workers must be at least 1")
        self.max_decode_batch = max_decode_batch
        self.batch_overhead = batch_overhead
        self.admission_limit = admission_limit
        self.initial_throughput_bps = initial_throughput_bps
        self.gpu_workers = gpu_workers
        self.dispatch_policy = dispatch_policy
        self.autoscale = autoscale
        self.tracer = tracer
        self.clock_factory: "Callable[[], SimClock]" = clock_factory or SimClock
        #: ``id(link)`` → human-readable label used in trace track names.
        self.link_labels: dict[int, str] = {}
        self._pending: list[tuple[float, NetworkLink, LoadProcess, float]] = []
        #: Resource stats of the last run (for reports and tests).  ``gpu`` is
        #: the bare scheduler or the worker pool — both expose the same
        #: aggregate counters; ``pool`` is set only on fleet runs.
        self.gpu: "GpuScheduler | GpuWorkerPool | None" = None
        self.pool: "GpuWorkerPool | None" = None
        self.channels: dict[int, LinkChannel] = {}

    @property
    def _fleet_mode(self) -> bool:
        """Whether this run needs the worker pool (vs the bare scheduler).

        The bare single-scheduler path is kept — and taken — whenever the
        fleet settings are all defaults, so existing single-GPU runs stay
        bit-compatible.  A dispatch-policy *instance* forces the pool even
        for one worker (used by tests comparing pool-of-1 to bare).
        """
        return (
            self.gpu_workers > 1
            or self.autoscale is not None
            or self.dispatch_policy != "least-loaded"
        )

    # ----------------------------------------------------------------- staging
    def add_request(
        self,
        arrival_s: float,
        link: NetworkLink,
        process: LoadProcess,
        initial_throughput_bps: float | None = None,
    ) -> int:
        """Stage a request; returns its id (position in the result list).

        ``initial_throughput_bps`` overrides the simulator-wide prior for this
        request (a request served from a fast replica should not start from a
        slow-link estimate).
        """
        if arrival_s < 0:
            raise ValueError("arrival_s must be non-negative")
        if initial_throughput_bps is not None and initial_throughput_bps <= 0:
            raise ValueError("initial_throughput_bps must be positive")
        self._pending.append(
            (arrival_s, link, process, initial_throughput_bps or self.initial_throughput_bps)
        )
        return len(self._pending) - 1

    # --------------------------------------------------------------------- run
    def run(self) -> list[RequestTimeline]:
        """Simulate all staged requests; returns timelines in staging order."""
        if not self._pending:
            raise ValueError("no requests to simulate")
        clock = self.clock_factory()
        tracer = self.tracer
        gpu: "GpuScheduler | GpuWorkerPool"
        if self._fleet_mode:
            from ..fleet.pool import GpuWorkerPool

            gpu = GpuWorkerPool(
                clock,
                num_workers=self.gpu_workers,
                max_batch_size=self.max_decode_batch,
                batch_overhead=self.batch_overhead,
                dispatch=self.dispatch_policy,
                autoscale=self.autoscale,
                tracer=tracer,
                track_prefix="gpu",
            )
            self.pool = gpu
        else:
            gpu = GpuScheduler(
                clock,
                max_batch_size=self.max_decode_batch,
                batch_overhead=self.batch_overhead,
                tracer=tracer,
                track="gpu",
            )
            self.pool = None
        channels: dict[int, LinkChannel] = {}

        def link_track(link: NetworkLink) -> str:
            label = self.link_labels.get(id(link), f"link-{len(channels)}")
            return f"link:{label}"

        states: list[_RequestState] = []
        for request_id, (arrival_s, link, process, throughput) in enumerate(self._pending):
            channel = channels.get(id(link))
            if channel is None:
                channel = channels[id(link)] = LinkChannel(
                    clock, link, tracer=tracer, track=link_track(link)
                )
            states.append(
                _RequestState(request_id, arrival_s, channel, process, throughput)
            )
        self._pending = []
        self.gpu = gpu
        self.channels = channels

        in_flight = 0
        admission_queue: Deque[_RequestState] = deque()

        def admit(state: _RequestState) -> None:
            nonlocal in_flight
            in_flight += 1
            state.timeline.admitted_s = clock.now
            advance(state)

        def on_arrival(state: _RequestState) -> None:
            if self.admission_limit is not None and in_flight >= self.admission_limit:
                admission_queue.append(state)
            else:
                admit(state)

        def finish(state: _RequestState) -> None:
            nonlocal in_flight
            state.timeline.finish_s = clock.now
            state.timeline.done = True
            in_flight -= 1
            if admission_queue:
                admit(admission_queue.popleft())

        def channel_for(link: NetworkLink) -> LinkChannel:
            channel = channels.get(id(link))
            if channel is None:
                channel = channels[id(link)] = LinkChannel(
                    clock, link, tracer=tracer, track=link_track(link)
                )
            return channel

        def advance(state: _RequestState) -> None:
            stage = state.process.next_stage(
                throughput_bps=state.throughput_bps,
                elapsed_s=clock.now - state.timeline.arrival_s,
                concurrency=max(in_flight, 1),
            )
            if stage is None:
                finish(state)
                return
            enqueued_s = clock.now
            if stage.num_bytes > 0:
                # A stage may override the request's serving link (a cold-tier
                # read moves bytes over the node's tier link); transfers on the
                # same link still serialize through one FIFO channel.
                channel = state.channel if stage.link is None else channel_for(stage.link)
                channel.request(
                    stage.num_bytes,
                    lambda transfer, wait_s: after_transfer(
                        state, stage, enqueued_s, transfer, wait_s
                    ),
                )
            else:
                transfer = TransferResult(
                    start_time=clock.now, end_time=clock.now, num_bytes=0.0
                )
                after_transfer(state, stage, enqueued_s, transfer, 0.0)

        def after_transfer(
            state: _RequestState,
            stage: LoadStage,
            enqueued_s: float,
            transfer: TransferResult,
            link_wait_s: float,
        ) -> None:
            # Only serving-link transfers update the measured throughput: the
            # adapter estimates the bandwidth of the link the next chunk will
            # use, and a tier-link read says nothing about it.
            if stage.link is None and transfer.num_bytes > 0 and transfer.duration > 0:
                state.throughput_bps = max(transfer.achieved_throughput_bps, 1.0)
            if stage.gpu_kind is not None:
                gpu.submit(
                    GpuTask(
                        request_id=state.timeline.request_id,
                        kind=stage.gpu_kind,
                        duration_s=stage.gpu_s,
                        batch_key=stage.batch_key,
                        session_key=stage.session_key,
                        on_complete=lambda finish_s, busy_s, gpu_wait_s: complete(
                            state,
                            stage,
                            enqueued_s,
                            transfer,
                            link_wait_s,
                            gpu_wait_s,
                            busy_s,
                        ),
                    )
                )
            else:
                complete(state, stage, enqueued_s, transfer, link_wait_s, 0.0, 0.0)

        def complete(
            state: _RequestState,
            stage: LoadStage,
            enqueued_s: float,
            transfer: TransferResult,
            link_wait_s: float,
            gpu_wait_s: float,
            gpu_busy_s: float,
        ) -> None:
            state.timeline.stages.append(
                StageRecord(
                    index=len(state.timeline.stages),
                    config=stage.config,
                    gpu_kind=stage.gpu_kind,
                    num_bytes=stage.num_bytes,
                    enqueued_s=enqueued_s,
                    transfer_start_s=transfer.start_time,
                    transfer_end_s=transfer.end_time,
                    ready_at_s=clock.now,
                    link_wait_s=link_wait_s,
                    gpu_wait_s=gpu_wait_s,
                    gpu_busy_s=gpu_busy_s,
                    achieved_throughput_bps=state.throughput_bps,
                )
            )
            advance(state)

        for state in states:
            clock.schedule(state.timeline.arrival_s, lambda s=state: on_arrival(s))
        clock.run()
        stuck = [state.timeline.request_id for state in states if not state.timeline.done]
        if stuck:
            raise RuntimeError(
                f"simulation deadlocked: requests {stuck} never finished"
            )
        return [state.timeline for state in states]

"""Event-driven concurrent serving: queueing at the GPU, batched decode.

The sequential engine serves one request at a time and the old batching
scheduler modeled concurrency as a static ``1/n`` GPU share.  This package
replaces both with a discrete-event simulation in which contention *emerges*:

* :class:`SimClock` — deterministic event loop over simulated time;
* :class:`LinkChannel` / :class:`GpuScheduler` — FIFO links and a serialized
  GPU run queue with continuous batching of same-node bitstream decodes;
* :class:`LoadStage` / :class:`StaticLoad` / :class:`ChunkedKVLoad` — what a
  request must transfer and compute, chunk by chunk, with the adaptation
  policy consulted against live contention;
* :class:`ConcurrentLoadSimulator` — runs requests through the shared
  resources; per-request TTFT decomposes exactly into queueing delay +
  transfer + compute;
* :class:`ConcurrentEngine` — the serving facade mirroring
  :class:`~repro.serving.engine.ContextLoadingEngine`, cluster-aware.
"""

from .engine import ConcurrentEngine, ConcurrentQueryResponse
from .events import SimClock
from .processes import TIER_CONFIG, ChunkedKVLoad, LoadProcess, LoadStage, StaticLoad
from .resources import DECODE, PREFILL, GpuScheduler, GpuTask, LinkChannel
from .simulator import ConcurrentLoadSimulator, RequestTimeline, StageRecord

__all__ = [
    "ChunkedKVLoad",
    "ConcurrentEngine",
    "ConcurrentLoadSimulator",
    "ConcurrentQueryResponse",
    "DECODE",
    "GpuScheduler",
    "GpuTask",
    "LinkChannel",
    "LoadProcess",
    "LoadStage",
    "PREFILL",
    "RequestTimeline",
    "SimClock",
    "StageRecord",
    "StaticLoad",
    "TIER_CONFIG",
]

"""Per-request load processes driven by the concurrent simulator.

A *load process* describes what one request must do to get its context onto
the GPU, one stage at a time: each :class:`LoadStage` is a network transfer
(possibly zero bytes) followed by optional GPU work (a bitstream decode or a
prefill).  The simulator asks the process for its next stage only when the
previous one finished, passing the throughput measured on this request's own
transfers and the number of requests currently in flight — so adaptive
processes make the same per-chunk decisions the single-request
:class:`~repro.streaming.streamer.KVStreamer` makes, but against live,
scheduler-derived contention instead of a static ``1/n`` share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from ...core.decoder import CacheGenDecoder
from ...core.kv_cache import KVCache
from ...llm.compute_model import ComputeModel
from ...network.link import NetworkLink
from ...streaming.adaptation import AdaptationPolicy, StreamDecision, TEXT_CONFIG
from ...streaming.chunking import PreparedChunk
from .resources import DECODE, PREFILL

__all__ = [
    "LoadStage",
    "LoadProcess",
    "StaticLoad",
    "ChunkedKVLoad",
    "PROMPT_CONFIG",
    "TIER_CONFIG",
]

#: Stage name of the final user-prompt prefill.
PROMPT_CONFIG = "prompt"

#: Stage name of a cold-tier read (disk/object store -> node memory).  Tier
#: stages move bytes over the node's *tier* link, not its serving link, and
#: are excluded from a request's transmitted-bytes accounting.
TIER_CONFIG = "cold-tier"


@dataclass(frozen=True)
class LoadStage:
    """One transfer-then-compute step of a request.

    Attributes
    ----------
    config:
        Configuration label (an encoding level, ``"text"``, ``"quant"``, or
        ``"prompt"``); recorded in the request timeline.
    num_bytes:
        Bytes to move over the request's link before the GPU work can start
        (0 for pure-compute stages such as the prompt prefill).
    gpu_kind:
        ``"decode"``, ``"prefill"``, or ``None`` for transfer-only stages.
    gpu_s:
        Solo duration of the GPU work at full GPU (batching and queueing are
        the scheduler's business).
    batch_key:
        Decodes sharing a batch key may be coalesced into one launch.
    session_key:
        Chat-session identity of the request, used by the fleet's sticky
        dispatch policy to keep a session on one GPU worker.
    link:
        Optional link override: the transfer runs over this link's FIFO
        channel instead of the request's serving link.  Cold-tier reads use
        it so concurrent cold hits on the same node serialize on that node's
        tier link while other requests stream over their serving links.
    """

    config: str
    num_bytes: float = 0.0
    gpu_kind: str | None = None
    gpu_s: float = 0.0
    batch_key: str | None = None
    session_key: str | None = None
    link: NetworkLink | None = None


class LoadProcess(Protocol):
    """Interface the concurrent simulator drives."""

    def next_stage(
        self, throughput_bps: float, elapsed_s: float, concurrency: int
    ) -> LoadStage | None:
        """The next stage, or ``None`` when the request is done.

        Parameters
        ----------
        throughput_bps:
            Throughput measured on this request's previous transfer.
        elapsed_s:
            Time since this request arrived (for SLO accounting).
        concurrency:
            Requests currently in flight (scheduler-derived contention).
        """
        ...


class StaticLoad:
    """A fixed stage list — the text and quantization baselines.

    The text baseline is one stage (ship the text, prefill the context); the
    uniform-quantization baseline is one transfer of the fixed-width tensors.
    A trailing prompt-prefill stage models the user's new question.
    """

    def __init__(self, stages: Sequence[LoadStage]) -> None:
        self._stages = list(stages)
        self._next = 0

    def next_stage(
        self, throughput_bps: float, elapsed_s: float, concurrency: int
    ) -> LoadStage | None:
        if self._next >= len(self._stages):
            return None
        stage = self._stages[self._next]
        self._next += 1
        return stage

    @staticmethod
    def text_load(
        num_tokens: int,
        text_bytes: float,
        compute: ComputeModel,
        prompt_tokens: int = 0,
    ) -> "StaticLoad":
        """Ship the context as text and prefill it (plus the prompt)."""
        stages = [
            LoadStage(
                config=TEXT_CONFIG,
                num_bytes=text_bytes,
                gpu_kind=PREFILL,
                gpu_s=compute.prefill_delay(num_tokens),
            )
        ]
        if prompt_tokens > 0:
            stages.append(_prompt_stage(compute, prompt_tokens))
        return StaticLoad(stages)

    @staticmethod
    def quant_load(
        num_bytes: float, compute: ComputeModel, prompt_tokens: int = 0
    ) -> "StaticLoad":
        """Ship uniformly quantized tensors (rescaling cost is negligible)."""
        stages = [LoadStage(config="quant", num_bytes=num_bytes)]
        if prompt_tokens > 0:
            stages.append(_prompt_stage(compute, prompt_tokens))
        return StaticLoad(stages)


def _prompt_stage(compute: ComputeModel, prompt_tokens: int) -> LoadStage:
    return LoadStage(
        config=PROMPT_CONFIG,
        gpu_kind=PREFILL,
        gpu_s=compute.prefill_delay(prompt_tokens),
    )


class ChunkedKVLoad:
    """CacheGen's chunked KV streaming as a load process.

    Mirrors the :class:`~repro.streaming.streamer.KVStreamer` loop: before
    each chunk the adaptation policy picks a configuration from the measured
    throughput and the remaining SLO budget; KV chunks become transfer+decode
    stages, text fallbacks become transfer+prefill stages.  Decisions are
    recorded so the delivered KV cache can be reconstructed afterwards.

    Parameters
    ----------
    prepared:
        The context's offline-encoded chunks.
    policy:
        Per-chunk adaptation policy.
    compute:
        GPU latency model (decode/prefill durations at full GPU).
    slo_s:
        Optional TTFT objective driving the policy.
    prompt_tokens:
        When positive, a final prompt-prefill stage is appended.
    batch_key:
        Batching domain of this request's decodes (the serving node id);
        decodes of co-located requests may share one batched launch.
    session_key:
        Chat-session identity threaded onto every stage, so sticky fleet
        dispatch can keep the session's GPU work on one worker.
    prologue:
        Stages issued before the first chunk, bypassing the adaptation
        policy.  A cold-tier hit prepends the serialized tier-link read here.
    """

    def __init__(
        self,
        prepared: Sequence[PreparedChunk],
        policy: AdaptationPolicy,
        compute: ComputeModel,
        slo_s: float | None = None,
        prompt_tokens: int = 0,
        batch_key: str | None = None,
        session_key: str | None = None,
        prologue: Sequence[LoadStage] = (),
    ) -> None:
        if not prepared:
            raise ValueError("no chunks to stream")
        self.prepared = list(prepared)
        self.policy = policy
        self.compute = compute
        self.slo_s = slo_s
        self.prompt_tokens = prompt_tokens
        self.batch_key = batch_key
        self.session_key = session_key
        self.decisions: list[StreamDecision] = []
        self._prologue = list(prologue)
        self._position = 0
        self._prompt_issued = False

    def next_stage(
        self, throughput_bps: float, elapsed_s: float, concurrency: int
    ) -> LoadStage | None:
        if self._prologue:
            return self._prologue.pop(0)
        if self._position < len(self.prepared):
            remaining = self.prepared[self._position :]
            remaining_time = (
                float("inf") if self.slo_s is None else max(self.slo_s - elapsed_s, 0.0)
            )
            recompute_time = self.compute.prefill_delay(
                sum(chunk.num_tokens for chunk in remaining)
            )
            decision = self.policy.decide(
                remaining,
                throughput_bps=throughput_bps,
                remaining_time_s=remaining_time,
                recompute_time_s=recompute_time,
                concurrency=max(concurrency, 1),
            )
            self.decisions.append(decision)
            chunk = remaining[0]
            self._position += 1
            if decision.is_text:
                return LoadStage(
                    config=TEXT_CONFIG,
                    num_bytes=float(chunk.text_bytes),
                    gpu_kind=PREFILL,
                    gpu_s=self.compute.prefill_delay(chunk.num_tokens),
                    batch_key=self.batch_key,
                    session_key=self.session_key,
                )
            return LoadStage(
                config=decision.config,
                num_bytes=chunk.bytes_for_level(decision.config),
                gpu_kind=DECODE,
                gpu_s=self.compute.decode_delay(chunk.num_tokens),
                batch_key=self.batch_key,
                session_key=self.session_key,
            )
        if self.prompt_tokens > 0 and not self._prompt_issued:
            self._prompt_issued = True
            return _prompt_stage(self.compute, self.prompt_tokens)
        return None

    # ------------------------------------------------------------------ result
    @property
    def configs(self) -> list[str]:
        return [decision.config for decision in self.decisions]

    def materialise(self, decoder: CacheGenDecoder) -> KVCache:
        """The KV cache the model ends up with, given the decisions made."""
        if len(self.decisions) < len(self.prepared):
            raise RuntimeError("cannot materialise an unfinished load")
        delivered = []
        for chunk, decision in zip(self.prepared, self.decisions):
            if decision.is_text:
                # Recomputing from text reproduces the lossless KV slice.
                delivered.append(chunk.chunk.kv)
            else:
                delivered.append(decoder.decode(chunk.encodings[decision.config]))
        return KVCache.concat(delivered)

"""Discrete-event simulation clock for the concurrent serving engine.

:class:`SimClock` is a minimal event loop: callbacks are scheduled at absolute
simulated times and executed in time order.  Ties are broken by scheduling
order (a monotonically increasing sequence number), so a simulation is fully
deterministic — two runs with the same inputs produce the same event order,
which the cluster determinism tests rely on.

The clock never reads wall time; one simulated second costs whatever the
scheduled callbacks cost to execute.
"""

from __future__ import annotations

import heapq
from typing import Callable

__all__ = ["SimClock"]


class SimClock:
    """An event loop over simulated time.

    Events are ``(time, tie_break, callback)`` triples on a heap; :meth:`run`
    pops them in order, advances :attr:`now` and invokes the callback.
    Callbacks may schedule further events (this is how transfers chain into
    decodes).  The default tie-break is the scheduling sequence number, making
    same-timestamp event order FIFO and fully deterministic; subclasses (the
    simcheck race detector) may override :meth:`_tie_break` to perturb it.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, object, Callable[[], None]]] = []
        #: Number of :meth:`schedule` calls that asked for a time strictly in
        #: the past and were clamped to ``now``.  A healthy simulation never
        #: does this; the simcheck sanitizers assert the count stays zero.
        self.clamped_schedules = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def _tie_break(self):
        """Ordering key among events scheduled for the same timestamp."""
        seq = self._seq
        self._seq += 1
        return seq

    def schedule(self, at: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at simulated time ``at`` (clamped to the present).

        Scheduling in the past would make time run backwards; such events fire
        "now" instead, preserving monotonicity without hiding caller bugs worse
        than a clamp would.  Each clamp increments :attr:`clamped_schedules`.
        """
        if at < self._now:
            self.clamped_schedules += 1
            at = self._now
        heapq.heappush(self._heap, (at, self._tie_break(), callback))

    def schedule_after(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule(self._now + delay, callback)

    def run(self) -> float:
        """Process events until the queue drains; returns the final time."""
        while self._heap:
            at, _, callback = heapq.heappop(self._heap)
            self._now = at
            callback()
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self._now:.6f}, pending={len(self._heap)})"

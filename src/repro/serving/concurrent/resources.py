"""Contended resources of the concurrent serving simulation.

Two resources shape a request's end-to-end latency under concurrency:

* :class:`LinkChannel` — a FIFO queue in front of one
  :class:`~repro.network.link.NetworkLink`.  Transfers over the same link
  serialize (the streaming of one request delays the streaming of another on
  the same storage node), while transfers over *different* links overlap
  freely — which is exactly how one request's network streaming overlaps
  another request's GPU compute.

* :class:`GpuScheduler` — the GPU server's run queue.  Prefill and bitstream
  decode work is serialized on the single GPU in FIFO order, so queueing
  delay *emerges* from contention instead of being modeled as a static
  ``1/n`` share.  KV bitstream decodes headed to the same serving node are
  coalesced into one batched kernel launch (continuous batching): whenever
  the GPU frees up, every queued decode with the head-of-line's batch key
  joins the next launch, whose duration is the longest member plus a small
  per-extra-member overhead — so a batch of N decodes finishes well before N
  sequential launches would.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Deque

from ...network.link import NetworkLink, TransferResult
from .events import SimClock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from ...telemetry.trace import Tracer

__all__ = ["LinkChannel", "GpuTask", "GpuScheduler", "DECODE", "PREFILL"]

#: GPU work kinds.  Decodes are batchable; prefills run one at a time (the
#: paper's serving stack pads prefills into a batch only at equal lengths,
#: which the simulation conservatively models as serial execution).
DECODE = "decode"
PREFILL = "prefill"


class LinkChannel:
    """FIFO access to one network link.

    ``request`` enqueues a transfer; when the link frees up the next transfer
    starts and its completion callback fires with the
    :class:`~repro.network.link.TransferResult` and the time the transfer
    spent waiting for the link.
    """

    def __init__(
        self,
        clock: SimClock,
        link: NetworkLink,
        tracer: "Tracer | None" = None,
        track: str = "link",
    ) -> None:
        self.clock = clock
        self.link = link
        self.tracer = tracer
        self.track = track
        self._queue: Deque[tuple[float, float, Callable[[TransferResult, float], None]]] = deque()
        self._busy = False
        self.total_wait_s = 0.0
        self.total_busy_s = 0.0

    def _sample_depth(self) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            depth = self.queue_depth
            tracer.sample("queue_depth", depth, track=self.track, at_s=self.clock.now)
            tracer.metrics.gauge(
                "link_queue_depth", "transfers queued or in flight per link"
            ).set(depth, link=self.track)

    @property
    def queue_depth(self) -> int:
        """Transfers waiting (including the one in flight)."""
        return len(self._queue) + (1 if self._busy else 0)

    def request(
        self, num_bytes: float, on_complete: Callable[[TransferResult, float], None]
    ) -> None:
        """Enqueue a transfer of ``num_bytes``; serve it when the link frees."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._queue.append((num_bytes, self.clock.now, on_complete))
        self._sample_depth()
        self._pump()

    def _pump(self) -> None:
        if self._busy or not self._queue:
            return
        num_bytes, enqueued_s, on_complete = self._queue.popleft()
        self._busy = True
        wait_s = self.clock.now - enqueued_s
        transfer = self.link.transfer(num_bytes, self.clock.now)
        self.total_wait_s += wait_s
        self.total_busy_s += transfer.duration
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.span(
                "transfer",
                track=self.track,
                start_s=self.clock.now,
                dur_s=transfer.duration,
                category="transfer",
                bytes=num_bytes,
                wait_s=wait_s,
            )
            tracer.metrics.counter("link_busy_s", "seconds each link spent transferring").inc(
                transfer.duration, link=self.track
            )
            tracer.metrics.counter("link_wait_s", "seconds transfers waited per link").inc(
                wait_s, link=self.track
            )
            tracer.metrics.counter("link_bytes", "bytes moved per link").inc(
                num_bytes, link=self.track
            )

        def _done() -> None:
            self._busy = False
            self._sample_depth()
            on_complete(transfer, wait_s)
            self._pump()

        self.clock.schedule(transfer.end_time, _done)


@dataclass
class GpuTask:
    """One unit of GPU work (a chunk decode or a prefill).

    ``on_complete`` receives ``(finish_s, busy_s, wait_s)``: when the work
    completed, the GPU time attributable to this task (its solo duration —
    independent of how many batchmates shared the launch), and everything
    else the task spent between enqueue and completion (run-queue wait plus
    the time riding along in a longer batched launch).

    ``batch_key`` is the batching domain (decodes sharing it may coalesce);
    ``session_key`` identifies a chat session for sticky fleet dispatch and
    plays no role on a single scheduler.
    """

    request_id: int
    kind: str
    duration_s: float
    on_complete: Callable[[float, float, float], None]
    batch_key: str | None = None
    session_key: str | None = None
    enqueued_s: float = field(default=0.0, compare=False)


class GpuScheduler:
    """Serializes GPU work with continuous batching of compatible decodes.

    Parameters
    ----------
    clock:
        The simulation clock.
    max_batch_size:
        Maximum number of decodes coalesced into one batched launch (``B`` in
        §5.3).
    batch_overhead:
        Marginal cost of each extra batch member, as a fraction of its solo
        duration.  A batch of decodes with durations ``d_i`` takes
        ``max(d_i) + batch_overhead * (sum(d_i) - max(d_i))`` — strictly less
        than running them back to back whenever the overhead is below 1.
    """

    def __init__(
        self,
        clock: SimClock,
        max_batch_size: int = 16,
        batch_overhead: float = 0.2,
        tracer: "Tracer | None" = None,
        track: str = "gpu",
    ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if not 0.0 <= batch_overhead <= 1.0:
            raise ValueError("batch_overhead must be in [0, 1]")
        self.clock = clock
        self.max_batch_size = max_batch_size
        self.batch_overhead = batch_overhead
        self.tracer = tracer
        self.track = track
        self._queue: list[GpuTask] = []
        self._busy = False
        self._launch_pending = False
        self.total_busy_s = 0.0
        self.total_wait_s = 0.0
        self.tasks_run = 0
        self.batches_run = 0

    def _sample_depth(self) -> None:
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            depth = self.queue_depth
            tracer.sample("queue_depth", depth, track=self.track, at_s=self.clock.now)
            tracer.metrics.gauge(
                "gpu_queue_depth", "tasks queued or running per GPU scheduler"
            ).set(depth, gpu=self.track)

    @property
    def queue_depth(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    @staticmethod
    def batched_duration_s(durations: list[float], batch_overhead: float) -> float:
        """Duration of one batched launch over the members' solo durations."""
        if not durations:
            return 0.0
        longest = max(durations)
        return longest + batch_overhead * (sum(durations) - longest)

    def submit(self, task: GpuTask) -> None:
        """Queue GPU work; it runs (possibly batched) when the GPU frees."""
        if task.duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        task.enqueued_s = self.clock.now
        self._queue.append(task)
        self._sample_depth()
        self._schedule_launch()

    def _schedule_launch(self) -> None:
        """Launch via a zero-delay event, not synchronously.

        Work becoming ready at the same simulated instant (e.g. transfers
        over parallel links completing together) must all be in the queue
        before the launch forms, or the first arrival would start a solo
        launch and its batchmates would wait a full round — continuous
        batching coalesces everything the current instant delivers.
        """
        if self._busy or self._launch_pending or not self._queue:
            return
        self._launch_pending = True
        self.clock.schedule_after(0.0, self._pump)

    def _pump(self) -> None:
        self._launch_pending = False
        if self._busy or not self._queue:
            return
        head = self._queue[0]
        if head.kind == DECODE and head.batch_key is not None:
            # Continuous batching: every queued decode headed to the same
            # node as the head of line joins this launch, up to the batch cap.
            # Unkeyed decodes never batch — None is "no domain", not a domain.
            batch = [
                task
                for task in self._queue
                if task.kind == DECODE and task.batch_key == head.batch_key
            ][: self.max_batch_size]
        else:
            batch = [head]
        chosen = {id(task) for task in batch}
        self._queue = [task for task in self._queue if id(task) not in chosen]

        start_s = self.clock.now
        busy_s = self.batched_duration_s(
            [task.duration_s for task in batch], self.batch_overhead
        )
        self._busy = True
        self.total_busy_s += busy_s
        self.tasks_run += len(batch)
        self.batches_run += 1
        for task in batch:
            self.total_wait_s += start_s - task.enqueued_s
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            name = (
                f"batch {head.kind} x{len(batch)}" if len(batch) > 1 else head.kind
            )
            tracer.span(
                name,
                track=self.track,
                start_s=start_s,
                dur_s=busy_s,
                category=head.kind,
                batch_size=len(batch),
                request_ids=[task.request_id for task in batch],
            )
            tracer.metrics.counter("gpu_busy_s", "seconds each GPU spent launched").inc(
                busy_s, gpu=self.track
            )
            tracer.metrics.counter("gpu_tasks", "GPU tasks run per scheduler").inc(
                len(batch), gpu=self.track
            )
            tracer.metrics.counter("gpu_batches", "batched launches per scheduler").inc(
                1, gpu=self.track
            )
            tracer.metrics.histogram(
                "gpu_batch_size", "decode tasks coalesced per launch"
            ).observe(len(batch), gpu=self.track)
            tracer.metrics.counter(
                "gpu_wait_s", "seconds tasks spent in the run queue per scheduler"
            ).inc(sum(start_s - task.enqueued_s for task in batch), gpu=self.track)

        def _done() -> None:
            self._busy = False
            self._sample_depth()
            finish_s = start_s + busy_s
            for task in batch:
                # A member is "busy" for its own solo duration only; queue
                # wait and the overhang of sharing a longer launch are waits,
                # so per-request compute stays independent of concurrency.
                task.on_complete(
                    finish_s,
                    task.duration_s,
                    max(finish_s - task.enqueued_s - task.duration_s, 0.0),
                )
            self._schedule_launch()

        self.clock.schedule(start_s + busy_s, _done)

"""The concurrent serving facade: batch queries through the event engine.

:class:`ConcurrentEngine` mirrors the
:class:`~repro.serving.engine.ContextLoadingEngine` API — ``ingest`` contexts,
``query`` them — but serves *sets* of queries through the discrete-event
simulator: requests are submitted with arrival times, then :meth:`run` plays
them out against the shared links and the GPU run queue.  Each response
carries a :class:`~repro.metrics.system.QueueingTTFTBreakdown`, so TTFT under
concurrency decomposes into queueing delay + transfer + compute instead of
being scaled by a static GPU share.

The facade wraps either a plain single-node engine or a
:class:`~repro.cluster.frontend.ClusterFrontend` (detected by its ``cluster``
attribute): in cluster mode each request streams from the replica the smart
lookup picks — the modeled per-node queue depth is maintained across the
batch, so co-arriving requests spread over replicas — and decodes of requests
served by the same node share batched GPU launches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ...metrics.system import QueueingTTFTBreakdown
from ...streaming.adaptation import FixedLevelPolicy, SLOAwareAdapter
from ...telemetry.trace import Tracer, emit_timeline_spans
from .._compat import warn_deprecated_entry_point
from ..api.types import ServeResponse
from .processes import TIER_CONFIG, ChunkedKVLoad, LoadStage, StaticLoad
from .resources import DECODE, PREFILL
from .simulator import ConcurrentLoadSimulator, RequestTimeline

if TYPE_CHECKING:  # avoid a circular import; the engine is only composed with
    from ..engine import ContextLoadingEngine
    from ..fleet.autoscale import AutoscaleSpec
    from ..fleet.dispatch import DispatchPolicy

__all__ = ["ConcurrentQueryResponse", "ConcurrentEngine"]

#: Tier labels, mirroring :data:`repro.storage.tiered.HOT`/``COLD``.  Spelled
#: out here because ``repro.storage`` imports the streaming package (which
#: imports this one) — importing it back at module level would be a cycle.
HOT = "hot"
COLD = "cold"


@dataclass
class ConcurrentQueryResponse(ServeResponse):
    """Query response of the event-driven engine.

    Historically this subclass carried the event-schedule fields
    (``arrival_s`` / ``finish_s`` / ``queueing_s``); those now live on the
    unified :class:`~repro.serving.api.ServeResponse`, of which this is a
    field-for-field alias kept for back compatibility.
    """


@dataclass
class _Submission:
    context_id: str
    question: str
    arrival_s: float
    num_tokens: int | None
    task: str
    slo_s: float | None
    session_id: str | None = None


@dataclass
class _Resolution:
    """Where one submission will be served from (fixed before the sim runs)."""

    use_kv: bool
    num_tokens: int
    stored: object | None = None
    node: object | None = None  # StorageNode in cluster mode
    failed_over: bool = False
    #: Nodes the cluster lookup touched before settling, in order.
    attempted: tuple[str, ...] = ()
    #: Tier the replica held the context in when routing was decided.
    tier: str | None = None
    #: Resilience outcome of the lookup (see ``cluster.sharded_store.Lookup``).
    degraded: bool = False
    cause: str | None = None
    retries: int = 0
    hedged: bool = False
    #: Modeled retry/hedge delay charged as link occupancy before streaming.
    extra_delay_s: float = 0.0
    #: Codec level a degraded read streams at (``None`` = policy default).
    level_override: str | None = None


class ConcurrentEngine:
    """Serves concurrent queries over a wrapped context-loading engine.

    Parameters
    ----------
    engine:
        The underlying :class:`~repro.serving.engine.ContextLoadingEngine`
        (or :class:`~repro.cluster.frontend.ClusterFrontend`); ingest, codec,
        storage and quality evaluation are delegated to it.
    max_decode_batch:
        Cap on batched decode launches on the GPU.
    batch_overhead:
        Marginal cost of each extra decode in a batch (fraction of its solo
        duration).
    admission_limit:
        Optional cap on requests in flight; excess arrivals queue FIFO.
    gpu_workers / dispatch_policy / autoscale:
        Fleet settings forwarded to the
        :class:`~repro.serving.concurrent.simulator.ConcurrentLoadSimulator`:
        the number of GPU workers behind the compute stage, how tasks are
        routed to them, and the optional
        :class:`~repro.serving.fleet.autoscale.AutoscaleSpec`.

    .. deprecated::
        Direct construction is deprecated; declare a
        :class:`repro.serving.api.ServingSpec` with ``concurrency > 1`` and
        use :func:`repro.serving.api.serve` / ``build_backend`` instead.
    """

    def __init__(
        self,
        engine: "ContextLoadingEngine",
        max_decode_batch: int = 16,
        batch_overhead: float = 0.2,
        admission_limit: int | None = None,
        gpu_workers: int = 1,
        dispatch_policy: "str | DispatchPolicy" = "least-loaded",
        autoscale: "AutoscaleSpec | None" = None,
        tracer: Tracer | None = None,
    ) -> None:
        warn_deprecated_entry_point(
            "ConcurrentEngine", 'ServingSpec(topology="single", concurrency=N)'
        )
        self.engine = engine
        self.max_decode_batch = max_decode_batch
        self.batch_overhead = batch_overhead
        self.admission_limit = admission_limit
        self.gpu_workers = gpu_workers
        self.dispatch_policy = dispatch_policy
        self.autoscale = autoscale
        self.tracer = tracer
        #: Optional SimClock factory forwarded to each run's simulator; the
        #: simcheck monitor injects its ClockSanitizer here.
        self.clock_factory = None
        self._submissions: list[_Submission] = []
        #: Simulator of the last :meth:`run` (fleet/pool stats live on it).
        self.last_sim: ConcurrentLoadSimulator | None = None

    # ------------------------------------------------------------------ mirror
    def ingest(self, context_id: str, num_tokens: int):
        """Offline path: delegate to the wrapped engine (not simulated)."""
        return self.engine.ingest(context_id, num_tokens)

    def submit(
        self,
        context_id: str,
        question: str,
        arrival_s: float = 0.0,
        num_tokens: int | None = None,
        task: str = "qa_accuracy",
        slo_s: float | None = None,
        session_id: str | None = None,
    ) -> int:
        """Stage a query; it is served on the next :meth:`run`.

        ``session_id`` tags the query as part of a chat session so the
        fleet's sticky dispatch can keep the session on one GPU worker.
        """
        self._submissions.append(
            _Submission(
                context_id, question, arrival_s, num_tokens, task, slo_s, session_id
            )
        )
        return len(self._submissions) - 1

    def query(
        self,
        context_id: str,
        question: str,
        num_tokens: int | None = None,
        task: str = "qa_accuracy",
        slo_s: float | None = None,
    ) -> ConcurrentQueryResponse:
        """Single-query convenience mirroring ``ContextLoadingEngine.query``."""
        self.submit(context_id, question, num_tokens=num_tokens, task=task, slo_s=slo_s)
        return self.run()[0]

    # --------------------------------------------------------------------- run
    def run(self) -> list[ConcurrentQueryResponse]:
        """Serve all staged queries concurrently; responses in staging order.

        Routing is decided before the event simulation runs, in arrival
        order: each KV-served request reserves its replica (deepening that
        node's modeled queue) so later arrivals prefer other replicas.  The
        reservation is held for the whole batch — an approximation that
        treats the batch as one contention window; requests spaced far apart
        in arrival time are better served in separate :meth:`run` calls.
        """
        if not self._submissions:
            raise ValueError("no queries submitted")
        submissions, self._submissions = self._submissions, []

        tracer = self.tracer if self.tracer is not None and self.tracer.enabled else None
        sim = ConcurrentLoadSimulator(
            max_decode_batch=self.max_decode_batch,
            batch_overhead=self.batch_overhead,
            admission_limit=self.admission_limit,
            gpu_workers=self.gpu_workers,
            dispatch_policy=self.dispatch_policy,
            autoscale=self.autoscale,
            tracer=tracer,
            clock_factory=self.clock_factory,
        )
        self.last_sim = sim
        if tracer is not None:
            self._label_links(sim)
        resolutions: list[_Resolution | None] = [None] * len(submissions)
        serving_nodes = []
        try:
            arrival_order = sorted(
                range(len(submissions)), key=lambda i: (submissions[i].arrival_s, i)
            )
            resilience = getattr(
                getattr(self.engine, "cluster", None), "resilience", None
            )
            for i in arrival_order:
                if tracer is not None:
                    # Routing-time events (lookup failovers, promotion on a
                    # cold hit) land at the request's arrival on the timeline.
                    tracer.advance_to(submissions[i].arrival_s)
                if resilience is not None:
                    # Breaker timers and hedge stats run on arrival time.
                    resilience.now = max(resilience.now, submissions[i].arrival_s)
                resolution = self._resolve(submissions[i])
                resolutions[i] = resolution
                if resolution.node is not None and resolution.use_kv:
                    resolution.node.begin_serving()
                    serving_nodes.append(resolution.node)
            processes: list[ChunkedKVLoad | StaticLoad] = []
            for submission, resolution in zip(submissions, resolutions):
                process, link, throughput = self._build_process(submission, resolution)
                processes.append(process)
                sim.add_request(
                    submission.arrival_s, link, process, initial_throughput_bps=throughput
                )
            timelines = sim.run()
        finally:
            for node in serving_nodes:
                node.end_serving()

        responses = [
            self._respond(submission, resolution, process, timeline)
            for submission, resolution, process, timeline in zip(
                submissions, resolutions, processes, timelines
            )
        ]
        # Node hit accounting happens only once every response exists, so a
        # failure mid-batch leaves no half-recorded stats behind (the caller's
        # fallback path would otherwise count the same hits again).
        for resolution, timeline in zip(resolutions, timelines):
            if resolution.use_kv and resolution.node is not None:
                resolution.node.record_hit(
                    timeline.served_bytes, tier=resolution.tier or HOT
                )
        if tracer is not None:
            self._emit_request_spans(tracer, submissions, resolutions, timelines, responses)
        return responses

    # --------------------------------------------------------------- telemetry
    def _label_links(self, sim: ConcurrentLoadSimulator) -> None:
        """Name the links the simulator may touch, for readable trace tracks."""
        engine = self.engine
        sim.link_labels[id(engine.link)] = "serving"
        cluster = getattr(engine, "cluster", None)
        if cluster is not None:
            for node_id, node in cluster.nodes.items():
                sim.link_labels[id(node.link)] = node_id
                tier_link = getattr(node.store, "tier_link", None)
                if tier_link is not None:
                    sim.link_labels[id(tier_link)] = f"tier:{node_id}"

    def _emit_request_spans(
        self,
        tracer: Tracer,
        submissions: list[_Submission],
        resolutions: list[_Resolution | None],
        timelines: list[RequestTimeline],
        responses: list[ConcurrentQueryResponse],
    ) -> None:
        """One root span per request, plus failover instants and TTFT metrics."""
        metrics = tracer.metrics
        for submission, resolution, timeline, response in zip(
            submissions, resolutions, timelines, responses
        ):
            root = emit_timeline_spans(
                tracer, timeline, label=submission.context_id, tier_config=TIER_CONFIG
            )
            root.annotate(
                used_kv_cache=resolution.use_kv,
                served_by=response.served_by,
                tier=resolution.tier,
                failed_over=resolution.failed_over,
            )
            metrics.histogram("request_ttft_s", "per-request TTFT").observe(
                response.ttft.total_s
            )
            metrics.histogram(
                "request_queueing_s", "per-request queueing delay"
            ).observe(timeline.queueing_s)
            metrics.counter("requests_served", "requests served per path").inc(
                1, path="kv" if resolution.use_kv else "text"
            )
            tracer.advance_to(timeline.finish_s)

    # ----------------------------------------------------------------- resolve
    def _resolve(self, submission: _Submission) -> _Resolution:
        """Mirror of the wrapped engine's routing, decided up front.

        Uses the engine's protected text-vs-KV heuristic and reference-KV memo
        on purpose: the facade is the concurrent half of the same subsystem.
        """
        engine = self.engine
        cluster = getattr(engine, "cluster", None)
        num_tokens = submission.num_tokens

        attempted: tuple[str, ...] = ()
        degraded = False
        cause: str | None = None
        retries = 0
        if cluster is not None:
            lookup = cluster.locate(submission.context_id)
            attempted = lookup.attempted_node_ids
            retries = lookup.retries
            if lookup.found:
                node, stored = lookup.node, lookup.stored
                tier_read_s = 0.0
                if lookup.cold_hit:
                    level_name = engine.config.default_level.name
                    tier_read_s = node.cold_read_delay_s(
                        stored.total_bytes(level_name)
                    )
                if not engine._prefer_text_path(
                    stored.num_tokens,
                    kv_link=node.link,
                    text_link=engine.link,
                    kv_extra_s=tier_read_s + lookup.extra_delay_s,
                ):
                    return _Resolution(
                        use_kv=True,
                        num_tokens=stored.num_tokens,
                        stored=stored,
                        node=node,
                        failed_over=lookup.failed_over,
                        attempted=attempted,
                        tier=lookup.tier,
                        degraded=lookup.degraded,
                        cause=lookup.cause if lookup.degraded else None,
                        retries=lookup.retries,
                        hedged=lookup.hedged,
                        extra_delay_s=lookup.extra_delay_s,
                        level_override=lookup.level_override,
                    )
                num_tokens = stored.num_tokens
            else:
                # A text fallback of a context the cluster once held is a
                # degraded answer (the short-context preference is not).
                degraded = cluster.known_tokens(submission.context_id) is not None
                cause = (lookup.cause or "evicted") if degraded else None
            if num_tokens is None:
                num_tokens = cluster.known_tokens(submission.context_id)
        elif engine.store_up and submission.context_id in engine.store:
            stored = engine.store.get_context(submission.context_id)
            if not engine._prefer_text_path(stored.num_tokens):
                return _Resolution(
                    use_kv=True, num_tokens=stored.num_tokens, stored=stored, tier=HOT
                )
            num_tokens = stored.num_tokens
        elif not engine.store_up and submission.context_id in engine.store:
            # The one store is down but holds the context: degrade to text.
            degraded = True
            cause = "node_down"
            if num_tokens is None:
                num_tokens = engine.store.peek_context(submission.context_id).num_tokens

        if num_tokens is None:
            raise ValueError(
                "num_tokens is required for contexts that have not been ingested"
            )
        return _Resolution(
            use_kv=False,
            num_tokens=num_tokens,
            attempted=attempted,
            degraded=degraded,
            cause=cause,
            retries=retries,
        )

    def _build_process(self, submission: _Submission, resolution: _Resolution):
        engine = self.engine
        compute = engine.compute_model
        prompt_tokens = max(engine.llm.tokenizer.count_tokens(submission.question), 1)
        if resolution.use_kv:
            link = resolution.node.link if resolution.node is not None else engine.link
            if resolution.level_override is not None:
                # A degraded read pins the cheaper level the resilience layer
                # chose — adaptation would climb back to the one that timed out.
                policy = FixedLevelPolicy(level_name=resolution.level_override)
            elif submission.slo_s is not None:
                policy = SLOAwareAdapter(
                    level_names=[level.name for level in engine.config.levels]
                )
            else:
                policy = FixedLevelPolicy(level_name=engine.config.default_level.name)
            batch_key = (
                resolution.node.node_id if resolution.node is not None else "local-gpu"
            )
            # A cold hit reads the bitstreams off the replica's tier link
            # before the serving link sees the first byte; concurrent cold
            # hits on the same node serialize on that node's tier channel.
            prologue: list[LoadStage] = []
            if resolution.extra_delay_s > 0.0:
                # Timeouts, backoff and hedge waits occupy the serving link
                # for their modeled duration (bytes = delay x bandwidth), so
                # retries of co-arriving requests contend for real link time.
                bandwidth_bps = link.trace.bandwidth_at(0.0)
                prologue.append(
                    LoadStage(
                        config=TIER_CONFIG,
                        num_bytes=resolution.extra_delay_s * bandwidth_bps / 8.0,
                        link=link,
                    )
                )
            if resolution.tier == COLD and resolution.node is not None:
                level_name = engine.config.default_level.name
                prologue.append(
                    LoadStage(
                        config=TIER_CONFIG,
                        num_bytes=resolution.stored.total_bytes(level_name),
                        link=resolution.node.store.tier_link,
                    )
                )
            process = ChunkedKVLoad(
                resolution.stored.chunks,
                policy=policy,
                compute=compute,
                slo_s=submission.slo_s,
                prompt_tokens=prompt_tokens,
                batch_key=batch_key,
                session_key=submission.session_id,
                prologue=prologue,
            )
            return process, link, link.trace.bandwidth_at(0.0)
        link = engine.link
        text_bytes = resolution.num_tokens * engine.config.text_bytes_per_token
        process = StaticLoad.text_load(
            resolution.num_tokens, text_bytes, compute, prompt_tokens=prompt_tokens
        )
        return process, link, link.trace.bandwidth_at(0.0)

    # ----------------------------------------------------------------- respond
    def _respond(
        self,
        submission: _Submission,
        resolution: _Resolution,
        process: ChunkedKVLoad | StaticLoad,
        timeline: RequestTimeline,
    ) -> ConcurrentQueryResponse:
        engine = self.engine
        reference_kv = engine._reference_kv(submission.context_id, resolution.num_tokens)
        if resolution.use_kv:
            assert isinstance(process, ChunkedKVLoad)
            delivered = process.materialise(engine.decoder)
            generation = engine.llm.generate_with_kv(
                delivered, reference_kv=reference_kv, task=submission.task
            )
            chunk_configs = process.configs
        else:
            generation = engine.llm.generate_with_kv(
                reference_kv, reference_kv=reference_kv, task=submission.task
            )
            chunk_configs = ["text"]

        decode_s = sum(
            stage.gpu_busy_s for stage in timeline.stages if stage.gpu_kind == DECODE
        )
        compute_s = sum(
            stage.gpu_busy_s for stage in timeline.stages if stage.gpu_kind == PREFILL
        )
        ttft = QueueingTTFTBreakdown(
            network_s=timeline.transfer_s,
            decode_s=decode_s,
            compute_s=compute_s,
            queueing_s=timeline.queueing_s,
        )
        served_by = None
        if resolution.use_kv and resolution.node is not None:
            served_by = resolution.node.node_id
        return ConcurrentQueryResponse(
            context_id=submission.context_id,
            question=submission.question,
            text=generation.text,
            quality=generation.quality,
            ttft=ttft,
            used_kv_cache=resolution.use_kv,
            chunk_configs=chunk_configs,
            transmitted_bytes=timeline.served_bytes,
            served_by=served_by,
            failed_over=resolution.failed_over,
            attempted_node_ids=resolution.attempted,
            arrival_s=timeline.arrival_s,
            finish_s=timeline.finish_s,
            served_tier=resolution.tier if resolution.use_kv else None,
            tier_transfer_s=timeline.tier_transfer_s,
            degraded=resolution.degraded,
            degrade_cause=resolution.cause,
            retries=resolution.retries,
            hedged=resolution.hedged,
        )

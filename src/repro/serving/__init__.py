"""Serving integration: the end-to-end context-loading engine of §6.

The sequential :class:`ContextLoadingEngine` serves one query at a time; the
:mod:`repro.serving.concurrent` subpackage serves batches of queries through a
discrete-event simulation of the shared links and GPU run queue.
"""

from .engine import ContextLoadingEngine
from .pipeline import IngestReport, QueryResponse
from .concurrent import ConcurrentEngine, ConcurrentQueryResponse

__all__ = [
    "ConcurrentEngine",
    "ConcurrentQueryResponse",
    "ContextLoadingEngine",
    "IngestReport",
    "QueryResponse",
]

"""Serving integration: the end-to-end context-loading engine of §6.

The public surface is the unified API in :mod:`repro.serving.api`: declare a
:class:`~repro.serving.api.ServingSpec`, build a backend (or call
:func:`~repro.serving.api.serve`), and drive it with
:class:`~repro.serving.api.ServeRequest` objects.

The historical entry points remain as deprecation shims: the sequential
:class:`ContextLoadingEngine` serves one query at a time, and the
:mod:`repro.serving.concurrent` subpackage serves batches of queries through
a discrete-event simulation of the shared links and GPU run queue.
"""

from .engine import ContextLoadingEngine
from .pipeline import IngestReport, QueryResponse
from .concurrent import ConcurrentEngine, ConcurrentQueryResponse
from .api import (
    Driver,
    RunReport,
    ServeRequest,
    ServeResponse,
    ServingSpec,
    build_backend,
    serve,
)

__all__ = [
    "ConcurrentEngine",
    "ConcurrentQueryResponse",
    "ContextLoadingEngine",
    "Driver",
    "IngestReport",
    "QueryResponse",
    "RunReport",
    "ServeRequest",
    "ServeResponse",
    "ServingSpec",
    "build_backend",
    "serve",
]

"""Serving integration: the end-to-end context-loading engine of §6.

The public surface is the unified API in :mod:`repro.serving.api`: declare a
:class:`~repro.serving.api.ServingSpec`, build a backend (or call
:func:`~repro.serving.api.serve`), and drive it with
:class:`~repro.serving.api.ServeRequest` objects.

The historical entry points remain as deprecation shims: the sequential
:class:`ContextLoadingEngine` serves one query at a time, and the
:mod:`repro.serving.concurrent` subpackage serves batches of queries through
a discrete-event simulation of the shared links and GPU run queue.
"""

from .engine import ContextLoadingEngine
from .pipeline import IngestReport, QueryResponse
from .concurrent import ConcurrentEngine, ConcurrentQueryResponse
from .api import (
    AutoscaleSpec,
    Driver,
    RunReport,
    ServeRequest,
    ServeResponse,
    ServingSpec,
    build_backend,
    serve,
)
from .fleet import (
    DispatchPolicy,
    GpuWorkerPool,
    LeastLoadedDispatch,
    LocalityDispatch,
    StickyDispatch,
    make_dispatch,
)

__all__ = [
    "AutoscaleSpec",
    "ConcurrentEngine",
    "ConcurrentQueryResponse",
    "ContextLoadingEngine",
    "DispatchPolicy",
    "Driver",
    "GpuWorkerPool",
    "IngestReport",
    "LeastLoadedDispatch",
    "LocalityDispatch",
    "QueryResponse",
    "RunReport",
    "ServeRequest",
    "ServeResponse",
    "ServingSpec",
    "StickyDispatch",
    "build_backend",
    "make_dispatch",
    "serve",
]

"""Serving integration: the end-to-end context-loading engine of §6."""

from .engine import ContextLoadingEngine
from .pipeline import IngestReport, QueryResponse

__all__ = ["ContextLoadingEngine", "IngestReport", "QueryResponse"]

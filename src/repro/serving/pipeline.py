"""Request/response types of the serving integration (§6).

These are the objects the :class:`~repro.serving.engine.ContextLoadingEngine`
exchanges with applications: an ingest report describing what was stored for a
context, and a query response carrying the generated text together with the
TTFT breakdown and the loading decisions the streamer made.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..llm.quality import GenerationQuality
from ..metrics.system import TTFTBreakdown

__all__ = ["IngestReport", "QueryResponse"]


@dataclass(frozen=True)
class IngestReport:
    """Summary of storing one context's encoded KV cache."""

    context_id: str
    num_tokens: int
    num_chunks: int
    stored_bytes_per_level: Mapping[str, float]
    encode_delay_s: float

    @property
    def total_stored_bytes(self) -> float:
        return float(sum(self.stored_bytes_per_level.values()))


@dataclass
class QueryResponse:
    """Response to a query against a (possibly cached) context."""

    context_id: str
    question: str
    text: str
    quality: GenerationQuality
    ttft: TTFTBreakdown
    used_kv_cache: bool
    chunk_configs: Sequence[str] = field(default_factory=list)
    transmitted_bytes: float = 0.0

    @property
    def ttft_s(self) -> float:
        return self.ttft.total_s

"""Figure 5: entropy of KV values under different grouping strategies.

Grouping values by channel or by layer (or both) reduces the entropy per
element far more than grouping by token position — the justification for
CacheGen's per-(channel, layer) arithmetic-coding distributions.
"""

from __future__ import annotations

import numpy as np

from ..analysis.insights import grouping_entropy_study
from ..datasets import LongChatDataset
from ..llm.synthetic_model import SyntheticLLM
from .common import ExperimentResult

__all__ = ["run_figure5"]


def run_figure5(
    models: tuple[str, ...] = ("llama-7b", "llama-13b"),
    num_contexts: int = 2,
    context_token_cap: int | None = 4_000,
) -> ExperimentResult:
    """Reproduce Figure 5 (entropy per grouping strategy)."""
    dataset = LongChatDataset()
    records = dataset.records(num_contexts)
    result = ExperimentResult(
        name="figure5",
        description="Entropy (bits/element) when grouping by token, channel or layer",
    )
    for model_name in models:
        llm = SyntheticLLM(model_name)
        totals: dict[str, list[float]] = {}
        for record in records:
            tokens = record.num_tokens if context_token_cap is None else min(
                record.num_tokens, context_token_cap
            )
            kv = llm.calculate_kv(record.context_id, tokens)
            for grouping, entropy in grouping_entropy_study(kv).items():
                totals.setdefault(grouping, []).append(entropy)
        result.add_row(
            model=model_name,
            **{f"entropy_{name}": float(np.mean(vals)) for name, vals in totals.items()},
        )
    return result

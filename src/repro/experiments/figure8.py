"""Figure 8: TTFT vs generation quality across models and datasets.

At 3 Gbps, CacheGen reduces TTFT by 3.1-4.7x over loading the text context and
by 3.2-3.7x over the quantization baseline, with little quality loss.  Also
provides the data for Figure 9 (KV size vs quality), since the same runs
report both metrics.
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult, Workbench, default_link

__all__ = ["run_figure8", "DEFAULT_PAIRS"]

#: (model, dataset) pairs shown in Figure 8 / Figure 9.
DEFAULT_PAIRS: tuple[tuple[str, str], ...] = (
    ("llama-70b", "longchat"),
    ("llama-34b", "longchat"),
    ("mistral-7b", "longchat"),
    ("llama-70b", "triviaqa"),
    ("llama-70b", "wikitext"),
    ("llama-70b", "narrativeqa"),
)


def run_figure8(
    pairs: Sequence[tuple[str, str]] = DEFAULT_PAIRS,
    num_contexts: int = 2,
    bandwidth_gbps: float = 3.0,
    quant_bits: Sequence[int] = (8, 4),
    context_token_cap: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 8 (TTFT and quality per model/dataset/method)."""
    link = default_link(bandwidth_gbps)
    result = ExperimentResult(
        name="figure8",
        description="TTFT and quality of text / quantization / CacheGen",
        metadata={"bandwidth_gbps": bandwidth_gbps, "num_contexts": num_contexts},
    )
    for model_name, dataset_name in pairs:
        workbench = Workbench(
            model=model_name,
            dataset=dataset_name,
            num_contexts=num_contexts,
            context_token_cap=context_token_cap,
        )
        for method_name, method in workbench.standard_methods(quant_bits=quant_bits).items():
            summary = Workbench.summarize(workbench.evaluate(method, link=link))
            result.add_row(
                model=model_name,
                dataset=dataset_name,
                method=method_name,
                ttft_s=summary["ttft_s"],
                kv_size_mb=summary["kv_size_mb"],
                quality=summary["quality"],
                relative_quality=summary["relative_quality"],
            )
    return result

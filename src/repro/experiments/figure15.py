"""Figure 15: ablation of the KV encoder's individual ideas.

Starting from uniform quantization, the ablation progressively adds arithmetic
coding with channel/layer-grouped distributions, change-based (delta)
encoding, and layer-wise quantization, plotting each variant's size-quality
point.
"""

from __future__ import annotations

from ..analysis.ablation import codec_ablation
from .common import ExperimentResult, Workbench

__all__ = ["run_figure15"]


def run_figure15(
    model: str = "mistral-7b",
    dataset: str = "longchat",
    num_contexts: int = 2,
    context_token_cap: int | None = 6_000,
    level: str = "medium",
) -> ExperimentResult:
    """Reproduce Figure 15 (contribution of each encoder component)."""
    workbench = Workbench(
        model=model,
        dataset=dataset,
        num_contexts=num_contexts,
        context_token_cap=context_token_cap,
    )
    sample_caches = [
        workbench.llm.calculate_kv(f"__ablation-profile-{i}", 1_000) for i in range(2)
    ]

    accumulator: dict[str, list[tuple[float, float, float]]] = {}
    for record in workbench.records:
        kv = workbench.reference_kv(record)
        for point in codec_ablation(
            kv, sample_caches, workbench.quality_model, task=workbench.dataset.task, level=level
        ):
            accumulator.setdefault(point.variant, []).append(
                (point.bits_per_element, point.relative_size, point.quality)
            )

    result = ExperimentResult(
        name="figure15",
        description="Codec ablation: quantization -> +AC -> +delta -> +layer-wise",
        metadata={"level": level},
    )
    for variant, samples in accumulator.items():
        bpes = [s[0] for s in samples]
        rel_sizes = [s[1] for s in samples]
        qualities = [s[2] for s in samples]
        result.add_row(
            variant=variant,
            bits_per_element=sum(bpes) / len(bpes),
            relative_size=sum(rel_sizes) / len(rel_sizes),
            quality=sum(qualities) / len(qualities),
        )
    return result

"""Figure 14: overhead breakdowns.

(a) TTFT breakdown (network / decode / compute) for text, quantization and
CacheGen; (b) prefill vs decode FLOPs; (c) offline encode delay vs
quantization; (d) storage cost of CacheGen's multiple encoded versions vs the
quantized and uncompressed caches.
"""

from __future__ import annotations

from ..baselines import UniformQuantizationBaseline
from ..streaming.chunking import prepare_chunks
from .common import ExperimentResult, Workbench, default_link

__all__ = ["run_figure14"]


def run_figure14(
    model: str = "mistral-7b",
    dataset: str = "longchat",
    num_tokens: int = 9_400,
    bandwidth_gbps: float = 3.0,
) -> ExperimentResult:
    """Reproduce Figure 14 (TTFT, FLOPs, offline delay and storage breakdowns)."""
    workbench = Workbench(model=model, dataset=dataset, num_contexts=1)
    base_record = workbench.records[0]
    record = type(base_record)(
        context_id=base_record.context_id,
        num_tokens=num_tokens,
        prompt_tokens=base_record.prompt_tokens,
        task=base_record.task,
        question=base_record.question,
    )
    link = default_link(bandwidth_gbps)
    compute = workbench.compute
    result = ExperimentResult(
        name="figure14",
        description="TTFT / FLOPs / offline delay / storage breakdowns",
        metadata={"model": model, "num_tokens": num_tokens},
    )

    # (a) TTFT breakdown per method.
    for method_name, method in workbench.standard_methods(quant_bits=(8,)).items():
        outcome = method.evaluate(workbench.request_for(record, link=link))
        result.add_row(
            panel="ttft_breakdown",
            method=method_name,
            network_s=outcome.breakdown.network_s,
            decode_s=outcome.breakdown.decode_s,
            compute_s=outcome.breakdown.compute_s,
            total_s=outcome.ttft_s,
        )

    # (b) compute breakdown in TFLOPs.
    result.add_row(
        panel="flops",
        method="text",
        prefill_tflops=compute.prefill_flops(num_tokens) / 1e12,
        decode_tflops=0.0,
    )
    result.add_row(
        panel="flops",
        method="cachegen",
        prefill_tflops=compute.prefill_flops(record.prompt_tokens) / 1e12,
        decode_tflops=compute.decode_flops(num_tokens) / 1e12,
    )

    # (c) offline preparation delay: quantizing vs CacheGen encoding.
    reference = workbench.reference_kv(record)
    quant_delay = compute.encode_flops(num_tokens) / compute.gpu.effective_flops
    encode_delay = compute.encode_delay(num_tokens) * len(workbench.codec_config.levels)
    result.add_row(panel="offline_delay", method="quantization", delay_s=quant_delay)
    result.add_row(panel="offline_delay", method="cachegen", delay_s=encode_delay)

    # (d) storage cost of each representation.
    quant = UniformQuantizationBaseline(8)
    _, quant_bytes = quant.quantized_cache(reference)
    prepared = prepare_chunks(reference, workbench.encoder)
    per_level: dict[str, float] = {}
    for chunk in prepared:
        for level_name, encoded in chunk.encodings.items():
            per_level[level_name] = per_level.get(level_name, 0.0) + encoded.compressed_bytes
    result.add_row(panel="storage", representation="uncompressed-fp16", size_gb=reference.full_nbytes / 1e9)
    result.add_row(panel="storage", representation="quantized-8bit", size_gb=quant_bytes / 1e9)
    for level_name, size in per_level.items():
        result.add_row(panel="storage", representation=f"cachegen-{level_name}", size_gb=size / 1e9)
    result.add_row(
        panel="storage",
        representation="cachegen-all-levels",
        size_gb=sum(per_level.values()) / 1e9,
    )
    return result

"""Figure 16: quality of experience (mean opinion score) user study.

The paper shows the same responses delivered with the TTFT of the original
(text) pipeline, the quantization baseline and CacheGen, and reports MTurk
mean opinion scores.  The reproduction substitutes a calibrated TTFT-to-MOS
model (see :mod:`repro.metrics.qoe`); the ordering of the three pipelines is
what the figure is about.
"""

from __future__ import annotations

from ..metrics.qoe import mean_opinion_score
from .common import ExperimentResult, Workbench, default_link

__all__ = ["run_figure16"]


def run_figure16(
    num_samples: int = 3,
    model: str = "mistral-7b",
    dataset: str = "longchat",
    bandwidth_gbps: float = 3.0,
    context_token_cap: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 16 (MOS of original / quantization / CacheGen)."""
    workbench = Workbench(
        model=model,
        dataset=dataset,
        num_contexts=num_samples,
        context_token_cap=context_token_cap,
    )
    link = default_link(bandwidth_gbps)
    methods = workbench.standard_methods(quant_bits=(8,))
    label_map = {"text": "original", "quant-8bit": "quantization", "cachegen": "cachegen"}

    result = ExperimentResult(
        name="figure16",
        description="Mean opinion scores of the three delivery pipelines",
    )
    for sample_index, record in enumerate(workbench.records, start=1):
        for method_name, method in methods.items():
            outcome = method.evaluate(workbench.request_for(record, link=link))
            mos = mean_opinion_score(
                ttft_s=outcome.ttft_s, relative_quality=outcome.quality.relative_quality
            )
            result.add_row(
                sample=f"sample-{sample_index}",
                pipeline=label_map.get(method_name, method_name),
                ttft_s=outcome.ttft_s,
                mos=mos,
            )
    return result

"""Figure 11: TTFT under a wide range of network bandwidths.

Mistral-7B with a 16K-token context, bandwidth swept from sub-Gbps to hundreds
of Gbps.  CacheGen wins across almost the whole range; the absolute gap over
the quantization baseline narrows at very high bandwidth, where transfers are
fast for everyone.
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult, Workbench, default_link

__all__ = ["run_figure11", "DEFAULT_BANDWIDTHS_GBPS"]

DEFAULT_BANDWIDTHS_GBPS: tuple[float, ...] = (0.4, 1.0, 3.0, 10.0, 40.0, 100.0, 400.0)


def run_figure11(
    bandwidths_gbps: Sequence[float] = DEFAULT_BANDWIDTHS_GBPS,
    num_tokens: int = 16_000,
    model: str = "mistral-7b",
    dataset: str = "longchat",
) -> ExperimentResult:
    """Reproduce Figure 11 (TTFT vs available bandwidth)."""
    workbench = Workbench(model=model, dataset=dataset, num_contexts=1)
    base_record = workbench.records[0]
    record = type(base_record)(
        context_id=base_record.context_id,
        num_tokens=num_tokens,
        prompt_tokens=base_record.prompt_tokens,
        task=base_record.task,
        question=base_record.question,
    )
    methods = workbench.standard_methods(quant_bits=(8,))

    result = ExperimentResult(
        name="figure11",
        description="TTFT of text / quantization / CacheGen vs bandwidth",
        metadata={"num_tokens": num_tokens, "model": model},
    )
    for bandwidth in bandwidths_gbps:
        link = default_link(bandwidth)
        for method_name, method in methods.items():
            outcome = method.evaluate(workbench.request_for(record, link=link))
            result.add_row(
                bandwidth_gbps=bandwidth,
                method=method_name,
                ttft_s=outcome.ttft_s,
                kv_size_mb=outcome.kv_size_bytes / 1e6,
            )
    return result

"""Figure 9: KV cache size vs generation quality across models and datasets.

CacheGen's encoder reduces the KV cache size by 3.5-4.3x compared to the
quantization baseline at similar quality.  The sweep compares the uniform
quantization baseline at 8/4/3 bits with CacheGen at each of its encoding
levels, so the full size-quality trade-off curves of Figure 9 come out.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines import UniformQuantizationBaseline
from .common import ExperimentResult, Workbench, default_link
from .figure8 import DEFAULT_PAIRS

__all__ = ["run_figure9"]


def run_figure9(
    pairs: Sequence[tuple[str, str]] = DEFAULT_PAIRS[:3],
    num_contexts: int = 2,
    quant_bits: Sequence[int] = (8, 4, 3),
    levels: Sequence[str] = ("high", "medium", "low", "lowest"),
    context_token_cap: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 9 (size-quality trade-off curves)."""
    link = default_link()
    result = ExperimentResult(
        name="figure9",
        description="KV cache size vs quality for quantization and CacheGen levels",
    )
    for model_name, dataset_name in pairs:
        workbench = Workbench(
            model=model_name,
            dataset=dataset_name,
            num_contexts=num_contexts,
            context_token_cap=context_token_cap,
        )
        for bits in quant_bits:
            method = UniformQuantizationBaseline(bits)
            summary = Workbench.summarize(workbench.evaluate(method, link=link))
            result.add_row(
                model=model_name,
                dataset=dataset_name,
                method=method.name,
                kv_size_mb=summary["kv_size_mb"],
                quality=summary["quality"],
                relative_quality=summary["relative_quality"],
            )
        for level in levels:
            method = workbench.cachegen_method(adaptive=False, fixed_level=level)
            method.name = f"cachegen-{level}"
            summary = Workbench.summarize(workbench.evaluate(method, link=link))
            result.add_row(
                model=model_name,
                dataset=dataset_name,
                method=method.name,
                kv_size_mb=summary["kv_size_mb"],
                quality=summary["quality"],
                relative_quality=summary["relative_quality"],
            )
    return result

"""Figure 4: layer-wise sensitivity of response quality to KV data loss.

The same data loss (coarse rounding) is applied to one group of layers at a
time; accuracy drops sharply when shallow layers are hit and barely moves for
the deepest layers.
"""

from __future__ import annotations

from ..analysis.insights import layer_sensitivity_study
from ..datasets import LongChatDataset
from ..llm.quality import QualityModel
from ..llm.synthetic_model import SyntheticLLM
from .common import ExperimentResult

__all__ = ["run_figure4"]


def run_figure4(
    models: tuple[str, ...] = ("llama-7b", "llama-13b"),
    num_contexts: int = 2,
    num_groups: int = 6,
    context_token_cap: int | None = 4_000,
) -> ExperimentResult:
    """Reproduce Figure 4 (accuracy when loss is applied per layer group)."""
    dataset = LongChatDataset()
    records = dataset.records(num_contexts)
    result = ExperimentResult(
        name="figure4",
        description="Accuracy when applying data loss to each layer group",
    )
    for model_name in models:
        base = dataset.base_quality_for(model_name)
        llm = SyntheticLLM(model_name)
        llm.quality_model = QualityModel(
            num_layers=llm.config.sim_layers, base_values={"qa_accuracy": base}
        )
        accumulator: dict[int, list[float]] = {}
        for record in records:
            tokens = record.num_tokens if context_token_cap is None else min(
                record.num_tokens, context_token_cap
            )
            kv = llm.calculate_kv(record.context_id, tokens)
            for row in layer_sensitivity_study(llm, kv, num_groups=num_groups):
                accumulator.setdefault(row["layer_group"], []).append(row["quality"])
        for group_index in sorted(accumulator):
            values = accumulator[group_index]
            result.add_row(
                model=model_name,
                layer_group=group_index,
                accuracy=sum(values) / len(values),
            )
    return result

"""SLO attainment under injected faults, across replication factors.

The paper's cluster serves compressed KV caches from sharded, replicated
nodes; this experiment measures what that replication is *for*.  The same
Zipf workload is replayed at several fault intensities — a single-node crash
window covering a growing fraction of the run — against replication factors
1 and 2, with the self-healing layer (retries with backoff, hedged reads,
circuit breakers, background re-replication) enabled throughout.  With one
replica, every context homed on the crashed node degrades to text re-prefill
and blows the TTFT SLO for the whole window; with two, reads fail over and
retry onto the surviving replica and re-replication restores redundancy, so
SLO attainment stays near the healthy baseline.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Sequence

from ..cluster import WorkloadGenerator
from ..faults import FaultSchedule, NodeCrash, ResiliencePolicy
from ..serving.api import ServingSpec, serve
from .common import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from ..telemetry.trace import Tracer

__all__ = ["run_resilience"]


def run_resilience(
    model: str = "mistral-7b",
    replication_factors: Sequence[int] = (1, 2),
    fault_intensities: Sequence[float] = (0.0, 0.5, 1.0),
    num_nodes: int = 3,
    num_requests: int = 80,
    num_contexts: int = 8,
    concurrency: int = 4,
    arrival_rate_per_s: float = 2.0,
    slo_s: float = 1.0,
    seed: int = 11,
    tracer: "Tracer | None" = None,
) -> ExperimentResult:
    """Sweep SLO attainment vs fault intensity across replication factors.

    ``fault_intensity`` is the fraction of the run's nominal span a
    single-node crash window covers (``0.0`` is the healthy baseline); the
    crash starts 20% into the run.  Every run serves with the full
    :class:`~repro.faults.ResiliencePolicy` so the replication factor is the
    only thing that changes between rows at one intensity.

    Pass a ``tracer`` to land every sweep point's fault/recovery instants on
    one timeline (``"faults"`` track).
    """
    result = ExperimentResult(
        name="resilience",
        description="SLO attainment vs fault intensity across replication factors",
        metadata={
            "model": model,
            "num_nodes": num_nodes,
            "num_requests": num_requests,
            "concurrency": concurrency,
            "slo_s": slo_s,
            "arrival_rate_per_s": arrival_rate_per_s,
        },
    )
    nominal_span_s = num_requests / arrival_rate_per_s
    for replication in replication_factors:
        if not 1 <= replication <= num_nodes:
            raise ValueError("replication_factors must be in [1, num_nodes]")
        spec = ServingSpec(
            model=model,
            topology="cluster",
            num_nodes=num_nodes,
            replication=replication,
            chunk_tokens=256,
            concurrency=concurrency,
            slo_s=slo_s,
            adaptive=False,
            resilience=ResiliencePolicy(),
        )
        for intensity in fault_intensities:
            if not 0.0 <= intensity <= 1.0:
                raise ValueError("fault_intensities must be in [0, 1]")
            faults = None
            if intensity > 0.0:
                crash_at = 0.2 * nominal_span_s
                faults = FaultSchedule(
                    [
                        NodeCrash(
                            "node-0",
                            at_s=crash_at,
                            recover_at_s=crash_at + intensity * 0.6 * nominal_span_s,
                        )
                    ]
                )
            workload = WorkloadGenerator(
                num_contexts=num_contexts,
                zipf_alpha=1.0,
                arrival_rate_per_s=arrival_rate_per_s,
                seed=seed,
            )
            with warnings.catch_warnings():
                # The driver's segment-boundary warning is the sweep's point.
                warnings.simplefilter("ignore")
                report = serve(
                    spec,
                    workload=workload,
                    num_requests=num_requests,
                    tracer=tracer,
                    faults=faults,
                )
            resilience = report.resilience
            result.add_row(
                replication=replication,
                fault_intensity=intensity,
                slo_attainment=report.slo_attainment,
                availability=resilience.availability if resilience else 1.0,
                degraded=report.degraded,
                failovers=report.failovers,
                retries=resilience.retries if resilience else 0,
                hedged_reads=resilience.hedged_reads if resilience else 0,
                repairs_completed=resilience.repairs_completed if resilience else 0,
                mean_mttr_s=resilience.mean_mttr_s if resilience else None,
                ttft_p95_s=report.ttft.p95_s,
                text_served=report.text_served,
            )
    return result

"""Figure 3: distribution of original KV values vs token-to-token deltas.

For Llama-7B and Llama-13B on LongChat contexts, the paper contrasts the CDF
of absolute original values with the CDF of absolute deltas between
consecutive tokens and reports the deltas' variance to be 2.4-2.9x lower.
"""

from __future__ import annotations

import numpy as np

from ..analysis.insights import delta_value_distribution
from ..datasets import LongChatDataset
from ..llm.synthetic_model import SyntheticLLM
from .common import ExperimentResult

__all__ = ["run_figure3"]


def run_figure3(
    models: tuple[str, ...] = ("llama-7b", "llama-13b"),
    num_contexts: int = 2,
    context_token_cap: int | None = 4_000,
    cdf_points: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
) -> ExperimentResult:
    """Reproduce Figure 3 (original vs delta value distributions)."""
    dataset = LongChatDataset()
    records = dataset.records(num_contexts)
    result = ExperimentResult(
        name="figure3",
        description="CDF of original vs consecutive-delta absolute values",
    )
    for model_name in models:
        llm = SyntheticLLM(model_name)
        ratios = []
        original_cdf = np.zeros(len(cdf_points))
        delta_cdf = np.zeros(len(cdf_points))
        for record in records:
            tokens = record.num_tokens if context_token_cap is None else min(
                record.num_tokens, context_token_cap
            )
            kv = llm.calculate_kv(record.context_id, tokens)
            distribution = delta_value_distribution(kv)
            ratios.append(distribution.variance_ratio)
            original_cdf += distribution.cdf("original", cdf_points)
            delta_cdf += distribution.cdf("delta", cdf_points)
        count = len(records)
        result.add_row(
            model=model_name,
            variance_ratio=float(np.mean(ratios)),
            **{f"original_cdf@{p}": original_cdf[i] / count for i, p in enumerate(cdf_points)},
            **{f"delta_cdf@{p}": delta_cdf[i] / count for i, p in enumerate(cdf_points)},
        )
    return result

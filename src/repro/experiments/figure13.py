"""Figure 13: SLO violation rate vs quality under random bandwidth traces.

Each context chunk's bandwidth is drawn from 0.1-10 Gbps.  CacheGen's
adaptation keeps the violation rate far below both the quantization baseline
and CacheGen without adaptation at the same quality.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..baselines import UniformQuantizationBaseline
from ..metrics.system import slo_violation_rate
from ..network.bandwidth import RandomTrace, gbps
from ..network.link import NetworkLink
from .common import ExperimentResult, Workbench

__all__ = ["run_figure13"]


def run_figure13(
    slos_s: Sequence[float] = (0.5, 1.0),
    num_traces: int = 5,
    num_contexts: int = 2,
    model: str = "mistral-7b",
    dataset: str = "longchat",
    context_token_cap: int | None = 6_000,
    min_gbps: float = 0.1,
    max_gbps: float = 10.0,
) -> ExperimentResult:
    """Reproduce Figure 13 (SLO violation rate and quality per method)."""
    workbench = Workbench(
        model=model,
        dataset=dataset,
        num_contexts=num_contexts,
        context_token_cap=context_token_cap,
    )
    methods = {
        "quantization": UniformQuantizationBaseline(8),
        "cachegen-no-adapt": workbench.cachegen_method(adaptive=False),
        "cachegen": workbench.cachegen_method(adaptive=True),
    }

    result = ExperimentResult(
        name="figure13",
        description="SLO violation rate vs quality under random bandwidth",
        metadata={"num_traces": num_traces, "bandwidth_range_gbps": (min_gbps, max_gbps)},
    )
    for slo in slos_s:
        for method_name, method in methods.items():
            delays: list[float] = []
            qualities: list[float] = []
            for trace_index in range(num_traces):
                trace = RandomTrace(
                    min_bps=gbps(min_gbps),
                    max_bps=gbps(max_gbps),
                    interval_s=0.25,
                    seed=trace_index,
                )
                link = NetworkLink(trace)
                for outcome in workbench.evaluate(method, link=link, slo_s=slo):
                    delays.append(outcome.extras.get("loading_delay_s", outcome.ttft_s))
                    qualities.append(outcome.quality.value)
            result.add_row(
                slo_s=slo,
                method=method_name,
                violation_rate=slo_violation_rate(delays, slo),
                quality=float(np.mean(qualities)),
            )
    return result

"""Figure 13: SLO violation rate vs quality under random bandwidth traces.

Each context chunk's bandwidth is drawn from 0.1-10 Gbps.  CacheGen's
adaptation keeps the violation rate far below both the quantization baseline
and CacheGen without adaptation at the same quality.

The two CacheGen variants are served through the unified serving API: one
:class:`~repro.serving.api.ServingSpec` (single-node backend), contexts
ingested once, each trace swapped onto the engine's serving link.  The
adaptive rows hand each query the SLO (the engine's SLO-aware adapter
degrades encoding levels chunk by chunk); the no-adaptation rows stream the
fixed default level and are judged against the same SLO afterwards.  The
quantization baseline has no engine path and keeps its method harness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..baselines import UniformQuantizationBaseline
from ..metrics.system import slo_violation_rate
from ..network.bandwidth import RandomTrace, gbps
from ..network.link import NetworkLink
from ..serving.api import ServeRequest, ServingSpec, build_backend
from .common import ExperimentResult, Workbench

__all__ = ["run_figure13"]


def run_figure13(
    slos_s: Sequence[float] = (0.5, 1.0),
    num_traces: int = 5,
    num_contexts: int = 2,
    model: str = "mistral-7b",
    dataset: str = "longchat",
    context_token_cap: int | None = 6_000,
    min_gbps: float = 0.1,
    max_gbps: float = 10.0,
) -> ExperimentResult:
    """Reproduce Figure 13 (SLO violation rate and quality per method)."""
    workbench = Workbench(
        model=model,
        dataset=dataset,
        num_contexts=num_contexts,
        context_token_cap=context_token_cap,
    )
    records = workbench.records
    quant = UniformQuantizationBaseline(8)

    # One spec serves both CacheGen variants: adaptation is per-query (an SLO
    # on the request enables the adapter), so the same backend and stored
    # bitstreams back every row.
    spec = ServingSpec(
        model=model,
        topology="single",
        base_quality={
            workbench.dataset.task: workbench.dataset.base_quality_for(
                workbench.model.name
            )
        },
    )
    backend = build_backend(spec, kind="single")
    for record in records:
        backend.ingest(record.context_id, record.num_tokens)

    def serve_rows(link: NetworkLink, slo_s: float | None) -> list:
        backend.engine.link = link
        for record in records:
            backend.submit(
                ServeRequest(
                    record.context_id,
                    record.question,
                    num_tokens=record.num_tokens,
                    task=record.task,
                    slo_s=slo_s,
                )
            )
        return backend.run()

    result = ExperimentResult(
        name="figure13",
        description="SLO violation rate vs quality under random bandwidth",
        metadata={"num_traces": num_traces, "bandwidth_range_gbps": (min_gbps, max_gbps)},
    )
    for slo in slos_s:
        for method_name in ("quantization", "cachegen-no-adapt", "cachegen"):
            delays: list[float] = []
            qualities: list[float] = []
            for trace_index in range(num_traces):
                trace = RandomTrace(
                    min_bps=gbps(min_gbps),
                    max_bps=gbps(max_gbps),
                    interval_s=0.25,
                    seed=trace_index,
                )
                link = NetworkLink(trace)
                if method_name == "quantization":
                    for outcome in workbench.evaluate(quant, link=link, slo_s=slo):
                        delays.append(
                            outcome.extras.get("loading_delay_s", outcome.ttft_s)
                        )
                        qualities.append(outcome.quality.value)
                else:
                    adaptive = method_name == "cachegen"
                    for response in serve_rows(link, slo if adaptive else None):
                        # The SLO applies to the context-loading delay; the
                        # prompt prefill is excluded, as in the method harness.
                        delays.append(response.ttft.network_s + response.ttft.decode_s)
                        qualities.append(response.quality.value)
            result.add_row(
                slo_s=slo,
                method=method_name,
                violation_rate=slo_violation_rate(delays, slo),
                quality=float(np.mean(qualities)),
            )
    return result

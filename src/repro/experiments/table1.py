"""Table 1: KV cache size and accuracy of CacheGen vs the baselines.

Mistral-7B on LongChat.  Rows: 8-bit quantization, CacheGen, H2O, CacheGen on
H2O, LLMLingua, CacheGen on LLMLingua — reporting the compressed KV cache size
(MB) and the task accuracy of each method.
"""

from __future__ import annotations

from ..baselines import (
    CacheGenOnCompressionBaseline,
    H2OBaseline,
    LLMLinguaBaseline,
    UniformQuantizationBaseline,
)
from .common import ExperimentResult, Workbench, default_link

__all__ = ["run_table1"]


def run_table1(
    num_contexts: int = 3,
    bandwidth_gbps: float = 3.0,
    model: str = "mistral-7b",
    dataset: str = "longchat",
    context_token_cap: int | None = None,
) -> ExperimentResult:
    """Reproduce Table 1 (size vs accuracy on Mistral-7B / LongChat)."""
    workbench = Workbench(
        model=model,
        dataset=dataset,
        num_contexts=num_contexts,
        context_token_cap=context_token_cap,
    )
    link = default_link(bandwidth_gbps)

    h2o = H2OBaseline(keep_fraction=0.45)
    lingua = LLMLinguaBaseline(keep_fraction=0.79)
    methods = [
        UniformQuantizationBaseline(8),
        workbench.cachegen_method(),
        h2o,
        CacheGenOnCompressionBaseline(h2o, workbench.encoder),
        lingua,
        CacheGenOnCompressionBaseline(lingua, workbench.encoder),
    ]

    result = ExperimentResult(
        name="table1",
        description="KV cache size (MB) and accuracy, Mistral-7B on LongChat",
        metadata={"model": model, "dataset": dataset, "num_contexts": num_contexts},
    )
    for method in methods:
        summary = Workbench.summarize(workbench.evaluate(method, link=link))
        result.add_row(
            technique=method.name,
            kv_size_mb=summary["kv_size_mb"],
            accuracy=summary["quality"],
            relative_quality=summary["relative_quality"],
        )
    return result

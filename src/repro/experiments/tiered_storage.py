"""Hot:cold capacity-ratio sweep over the tiered storage cluster.

The paper's cluster stores compressed KV caches in capacity-bounded memory;
Appendix E prices a cheaper, slower storage class next to it.  This experiment
splits a fixed per-node byte budget between the two tiers and serves the same
Zipf workload at every split — declared as one
:class:`~repro.serving.api.ServingSpec` per ratio and driven open-loop through
the unified API's arrival-driven :class:`~repro.serving.api.Driver` (the true
Poisson arrival process, not fixed-size waves): a bigger hot tier keeps TTFT
low, a bigger cold tier keeps contexts resident (demoting instead of dropping)
at a fraction of the $/GB — the sweep reports where the per-tier hit ratios,
the TTFT percentiles and the cost per request land between those extremes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..cluster import WorkloadGenerator
from ..serving.api import ServingSpec, serve
from .common import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from ..telemetry.trace import Tracer

__all__ = ["run_tiered_storage"]


def run_tiered_storage(
    model: str = "mistral-7b",
    hot_fractions: Sequence[float] = (1.0, 0.5, 0.25),
    total_bytes_per_node: float = 240e6,
    num_nodes: int = 2,
    num_requests: int = 40,
    num_contexts: int = 8,
    concurrency: int = 4,
    slo_s: float = 1.0,
    tier_bandwidth_gbps: float = 1.0,
    seed: int = 11,
    tracer: "Tracer | None" = None,
) -> ExperimentResult:
    """Sweep the hot:cold split of a fixed per-node storage budget.

    ``hot_fraction=1.0`` is the single-tier baseline (capacity evictions drop
    contexts); smaller fractions shift budget to the cold tier, trading hot
    hits for cold hits that pay the tier link but dodge the re-prefill.

    Pass a ``tracer`` to record the sweep's full telemetry (all ratios land on
    one timeline; demotion/promotion instants carry the per-node track names).
    """
    result = ExperimentResult(
        name="tiered-storage",
        description="Hot:cold capacity ratio vs per-tier hits, TTFT and $/request",
        metadata={
            "model": model,
            "total_bytes_per_node": total_bytes_per_node,
            "num_nodes": num_nodes,
            "num_requests": num_requests,
            "concurrency": concurrency,
            "slo_s": slo_s,
        },
    )
    for hot_fraction in hot_fractions:
        if not 0.0 < hot_fraction <= 1.0:
            raise ValueError("hot_fractions must be in (0, 1]")
        hot_bytes = total_bytes_per_node * hot_fraction
        cold_bytes = total_bytes_per_node - hot_bytes
        spec = ServingSpec(
            model=model,
            topology="tiered" if cold_bytes > 0 else "cluster",
            num_nodes=num_nodes,
            replication=2,
            max_bytes_per_node=hot_bytes,
            cold_bytes_per_node=cold_bytes if cold_bytes > 0 else None,
            tier_bandwidth_gbps=tier_bandwidth_gbps,
            eviction_policy="lru",
            chunk_tokens=256,
            concurrency=concurrency,
            slo_s=slo_s,
            adaptive=False,
        )
        workload = WorkloadGenerator(
            num_contexts=num_contexts,
            zipf_alpha=1.0,
            token_choices=(320, 640),
            seed=seed,
        )
        report = serve(spec, workload=workload, num_requests=num_requests, tracer=tracer)
        result.add_row(
            hot_fraction=hot_fraction,
            hit_ratio=report.hit_ratio,
            hot_hit_ratio=report.hot_hit_ratio,
            cold_hit_ratio=report.cold_hit_ratio,
            demotions=report.demotions,
            promotions=report.promotions,
            evict_drops=report.total_evictions,
            text_served=report.text_served,
            ttft_p50_s=report.ttft.p50_s,
            ttft_p95_s=report.ttft.p95_s,
            queueing_p95_s=report.queueing.p95_s if report.queueing else 0.0,
            slo_attainment=report.slo_attainment,
            storage_usd_per_month=report.storage_cost_usd_per_month,
            cost_usd_per_request=report.cost_usd_per_request,
        )
    return result

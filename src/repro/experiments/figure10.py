"""Figure 10: CacheGen applied on top of context-compression baselines.

H2O and LLMLingua shrink the KV cache by dropping tokens but keep it as
floating-point tensors; applying CacheGen's encoder to what survives shrinks
it a further 3.3-4.2x at essentially the same quality.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines import CacheGenOnCompressionBaseline, H2OBaseline, LLMLinguaBaseline
from .common import ExperimentResult, Workbench, default_link

__all__ = ["run_figure10"]


def run_figure10(
    models: Sequence[str] = ("mistral-7b", "llama-34b", "llama-70b"),
    dataset: str = "longchat",
    num_contexts: int = 2,
    h2o_keep: float = 0.45,
    lingua_keep: float = 0.79,
    context_token_cap: int | None = None,
) -> ExperimentResult:
    """Reproduce Figure 10 (CacheGen composed with H2O / LLMLingua)."""
    link = default_link()
    result = ExperimentResult(
        name="figure10",
        description="KV size and quality of H2O / LLMLingua with and without CacheGen",
    )
    for model_name in models:
        workbench = Workbench(
            model=model_name,
            dataset=dataset,
            num_contexts=num_contexts,
            context_token_cap=context_token_cap,
        )
        h2o = H2OBaseline(keep_fraction=h2o_keep)
        lingua = LLMLinguaBaseline(keep_fraction=lingua_keep)
        methods = [
            h2o,
            CacheGenOnCompressionBaseline(h2o, workbench.encoder),
            lingua,
            CacheGenOnCompressionBaseline(lingua, workbench.encoder),
        ]
        for method in methods:
            summary = Workbench.summarize(workbench.evaluate(method, link=link))
            result.add_row(
                model=model_name,
                dataset=dataset,
                method=method.name,
                kv_size_mb=summary["kv_size_mb"],
                quality=summary["quality"],
                relative_quality=summary["relative_quality"],
            )
    return result

"""Table 2: size and context-length statistics of the evaluation datasets."""

from __future__ import annotations

from ..datasets import ALL_DATASETS
from .common import ExperimentResult

__all__ = ["run_table2"]


def run_table2(seed: int = 0) -> ExperimentResult:
    """Reproduce Table 2 (dataset sizes and context length statistics)."""
    result = ExperimentResult(
        name="table2",
        description="Size and context lengths of the evaluation datasets",
    )
    for name, dataset_cls in ALL_DATASETS.items():
        stats = dataset_cls(seed=seed).length_statistics()
        result.add_row(
            dataset=name,
            size=stats["size"],
            median_tokens=stats["median"],
            std_tokens=stats["std"],
            p95_tokens=stats["p95"],
        )
    return result

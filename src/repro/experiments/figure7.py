"""Figure 7: time series of CacheGen's adaptation under a bandwidth drop.

A single context is streamed over a step trace (fast start, sharp drop,
partial recovery).  The non-adaptive variants miss the SLO; CacheGen switches
to recomputing from text during the outage and to a lower encoding level after
the partial recovery, meeting the SLO.
"""

from __future__ import annotations

from ..baselines import UniformQuantizationBaseline
from ..network.bandwidth import StepTrace, gbps
from ..network.link import NetworkLink
from .common import ExperimentResult, Workbench

__all__ = ["run_figure7"]


def run_figure7(
    slo_s: float = 4.0,
    num_tokens: int = 9_400,
    model: str = "mistral-7b",
    drop_at_s: float = 2.0,
    recover_at_s: float = 4.0,
    initial_gbps: float = 2.0,
    drop_gbps: float = 0.2,
    recovered_gbps: float = 1.0,
) -> ExperimentResult:
    """Reproduce Figure 7 (per-chunk configuration decisions over time)."""
    workbench = Workbench(model=model, dataset="longchat", num_contexts=1)
    record = workbench.records[0]
    record = type(record)(
        context_id=record.context_id,
        num_tokens=num_tokens,
        prompt_tokens=record.prompt_tokens,
        task=record.task,
        question=record.question,
    )
    trace = StepTrace(
        initial_bps=gbps(initial_gbps),
        drop_bps=gbps(drop_gbps),
        recovered_bps=gbps(recovered_gbps),
        drop_at_s=drop_at_s,
        recover_at_s=recover_at_s,
    )
    link = NetworkLink(trace)

    result = ExperimentResult(
        name="figure7",
        description="Adaptation decisions of each chunk under a bandwidth drop",
        metadata={"slo_s": slo_s, "trace": "step"},
    )

    methods = {
        "quantization": UniformQuantizationBaseline(8),
        "cachegen-no-adapt": workbench.cachegen_method(adaptive=False),
        "cachegen": workbench.cachegen_method(adaptive=True),
    }
    for name, method in methods.items():
        request = workbench.request_for(record, link=link, slo_s=slo_s)
        outcome = method.evaluate(request)
        loading_delay = outcome.extras.get("loading_delay_s", outcome.ttft_s)
        result.add_row(
            method=name,
            ttft_s=outcome.ttft_s,
            loading_delay_s=loading_delay,
            meets_slo=loading_delay <= slo_s,
            configs=",".join(outcome.extras.get("configs", [])) or "-",
            transmitted_mb=outcome.transmitted_bytes / 1e6,
        )
    return result

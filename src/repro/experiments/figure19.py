"""Figure 19: TTFT improvement over the best baseline across the workload space.

A heatmap over available bandwidth (log scale) and available GPU cycles
(1/number of concurrent requests): each cell reports CacheGen's TTFT reduction
relative to the better of the text and quantization baselines.
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult, Workbench, default_link

__all__ = ["run_figure19"]


def run_figure19(
    bandwidths_gbps: Sequence[float] = (0.5, 1.0, 3.0, 10.0, 40.0),
    concurrency_levels: Sequence[int] = (1, 2, 4, 8),
    num_tokens: int = 9_600,
    model: str = "mistral-7b",
) -> ExperimentResult:
    """Reproduce Figure 19 (improvement heatmap over bandwidth x GPU share)."""
    workbench = Workbench(model=model, dataset="longchat", num_contexts=1)
    base_record = workbench.records[0]
    record = type(base_record)(
        context_id=base_record.context_id,
        num_tokens=num_tokens,
        prompt_tokens=base_record.prompt_tokens,
        task=base_record.task,
        question=base_record.question,
    )
    methods = workbench.standard_methods(quant_bits=(8,))

    result = ExperimentResult(
        name="figure19",
        description="CacheGen TTFT improvement over the best baseline",
        metadata={"num_tokens": num_tokens},
    )
    for bandwidth in bandwidths_gbps:
        link = default_link(bandwidth)
        for n in concurrency_levels:
            ttfts: dict[str, float] = {}
            for method_name, method in methods.items():
                request = workbench.request_for(
                    record, link=link, gpu_share=1.0 / n, concurrency=n
                )
                ttfts[method_name] = method.evaluate(request).ttft_s
            best_baseline = min(ttfts["text"], ttfts["quant-8bit"])
            result.add_row(
                bandwidth_gbps=bandwidth,
                concurrent_requests=n,
                cachegen_ttft_s=ttfts["cachegen"],
                best_baseline_ttft_s=best_baseline,
                improvement=best_baseline / ttfts["cachegen"],
            )
    return result

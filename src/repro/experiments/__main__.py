"""Command-line entry point: ``python -m repro.experiments <name>``."""

import sys

from .common import experiment_cli

print(experiment_cli(sys.argv[1:]))  # noqa: T201

"""Reproductions of every table and figure in the paper's evaluation.

Each module exposes a ``run_*`` function returning an
:class:`~repro.experiments.common.ExperimentResult` whose rows mirror what the
paper reports.  The benchmark suite under ``benchmarks/`` calls these with
small, fast settings; pass larger ``num_contexts`` (and drop the token caps)
for tighter estimates.
"""

from .appendix_e import run_appendix_e
from .common import ExperimentResult, Workbench, default_link, experiment_cli
from .figure3 import run_figure3
from .figure4 import run_figure4
from .figure5 import run_figure5
from .figure7 import run_figure7
from .figure8 import run_figure8
from .figure9 import run_figure9
from .figure10 import run_figure10
from .figure11 import run_figure11
from .figure12 import run_figure12_concurrency, run_figure12_context_length
from .figure13 import run_figure13
from .figure14 import run_figure14
from .figure15 import run_figure15
from .figure16 import run_figure16
from .figure18 import run_figure18
from .figure19 import run_figure19
from .resilience import run_resilience
from .table1 import run_table1
from .table2 import run_table2
from .tiered_storage import run_tiered_storage

#: All experiment entry points keyed by the paper artefact they reproduce.
ALL_EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure7": run_figure7,
    "figure8": run_figure8,
    "figure9": run_figure9,
    "figure10": run_figure10,
    "figure11": run_figure11,
    "figure12-concurrency": run_figure12_concurrency,
    "figure12-context-length": run_figure12_context_length,
    "figure13": run_figure13,
    "figure14": run_figure14,
    "figure15": run_figure15,
    "figure16": run_figure16,
    "figure18": run_figure18,
    "figure19": run_figure19,
    "appendix-e": run_appendix_e,
    "tiered-storage": run_tiered_storage,
    "resilience": run_resilience,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "Workbench",
    "default_link",
    "experiment_cli",
    "run_appendix_e",
    "run_figure10",
    "run_figure11",
    "run_figure12_concurrency",
    "run_figure12_context_length",
    "run_figure13",
    "run_figure14",
    "run_figure15",
    "run_figure16",
    "run_figure18",
    "run_figure19",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_resilience",
    "run_table1",
    "run_table2",
    "run_tiered_storage",
]

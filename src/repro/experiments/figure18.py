"""Figure 18: CacheGen vs more intrusive methods.

(a) Smaller models at different quantization levels (perplexity task),
(b) context/token selection (Scissorhands*), and (c) Gisting, which retrains
the LLM to accept compressed gist tokens.  CacheGen reaches smaller KV sizes
at similar or better quality without touching the model or the context.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines import GistingBaseline, ScissorhandsBaseline, SmallerModelBaseline
from .common import ExperimentResult, Workbench, default_link

__all__ = ["run_figure18"]


def run_figure18(
    model: str = "llama-7b",
    num_contexts: int = 2,
    smaller_model_bits: Sequence[int] = (8, 4),
    scissorhands_keeps: Sequence[float] = (0.5, 0.3, 0.15),
    gisting_ratios: Sequence[float] = (2.0, 8.0, 32.0),
    cachegen_levels: Sequence[str] = ("high", "medium", "low"),
    context_token_cap: int | None = 4_000,
) -> ExperimentResult:
    """Reproduce Figure 18 (smaller models, token selection, gisting)."""
    link = default_link()
    result = ExperimentResult(
        name="figure18",
        description="CacheGen vs smaller models, Scissorhands* and Gisting",
    )

    panels = {
        "smaller_model": ("wikitext", [SmallerModelBaseline(num_bits=b) for b in smaller_model_bits]),
        "context_selection": (
            "triviaqa",
            [ScissorhandsBaseline(keep_fraction=k) for k in scissorhands_keeps],
        ),
        "gisting": ("longchat", [GistingBaseline(compression_ratio=r) for r in gisting_ratios]),
    }
    for panel, (dataset_name, methods) in panels.items():
        workbench = Workbench(
            model=model,
            dataset=dataset_name,
            num_contexts=num_contexts,
            context_token_cap=context_token_cap,
        )
        for method in methods:
            summary = Workbench.summarize(workbench.evaluate(method, link=link))
            result.add_row(
                panel=panel,
                dataset=dataset_name,
                method=method.name,
                kv_size_mb=summary["kv_size_mb"],
                quality=summary["quality"],
            )
        for level in cachegen_levels:
            cachegen = workbench.cachegen_method(adaptive=False, fixed_level=level)
            cachegen.name = f"cachegen-{level}"
            summary = Workbench.summarize(workbench.evaluate(cachegen, link=link))
            result.add_row(
                panel=panel,
                dataset=dataset_name,
                method=cachegen.name,
                kv_size_mb=summary["kv_size_mb"],
                quality=summary["quality"],
            )
    return result

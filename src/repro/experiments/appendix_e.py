"""Appendix E: the economics of storing KV caches vs recomputing them.

For an 8.5K-token Llama-13B context, storing CacheGen's encoded versions costs
cents per month while every recomputation costs a fraction of a cent — so past
~150 reuses per month the cache also saves money, not just latency.  The cold
(disk/object-store) tier stores the same bytes several times cheaper, so its
breakeven reuse rate is proportionally lower — the economic rationale for
demoting capacity victims there instead of dropping them.
"""

from __future__ import annotations

from typing import Sequence

from ..llm.model_config import get_model_config
from ..storage.cost import TieredCostModel
from .common import ExperimentResult

__all__ = ["run_appendix_e"]


def run_appendix_e(
    model: str = "llama-13b",
    num_tokens: int = 8_500,
    bits_per_element: float = 2.4,
    num_versions: int = 4,
    reuse_rates_per_month: Sequence[int] = (10, 50, 150, 500, 1_000),
) -> ExperimentResult:
    """Reproduce the Appendix E storage-vs-recompute cost analysis.

    Each row prices the hot tier (the paper's headline estimate) and the cold
    tier side by side at one monthly reuse rate.
    """
    cost_model = TieredCostModel()
    analysis = cost_model.analyse(
        model=get_model_config(model),
        num_tokens=num_tokens,
        compressed_bits_per_element=bits_per_element,
        num_stored_versions=num_versions,
    )
    # Same bytes, cheaper tier: scale the hot bill by the price ratio so the
    # two columns always price the context ``analyse`` sized.
    pricing = cost_model.pricing
    cold_monthly = analysis.storage_usd_per_month * (
        pricing.cold_storage_usd_per_gb_month / pricing.storage_usd_per_gb_month
    )
    cold_breakeven = cold_monthly / analysis.recompute_usd_per_request
    result = ExperimentResult(
        name="appendix-e",
        description="Storage vs recompute cost of a cached context, per tier",
        metadata={
            "model": model,
            "num_tokens": num_tokens,
            "storage_usd_per_month": analysis.storage_usd_per_month,
            "cold_storage_usd_per_month": cold_monthly,
            "recompute_usd_per_request": analysis.recompute_usd_per_request,
            "breakeven_requests_per_month": analysis.breakeven_requests_per_month,
            "cold_breakeven_requests_per_month": cold_breakeven,
        },
    )
    for reuse_rate in reuse_rates_per_month:
        monthly_recompute = analysis.recompute_usd_per_request * reuse_rate
        result.add_row(
            requests_per_month=reuse_rate,
            storage_usd_per_month=analysis.storage_usd_per_month,
            cold_storage_usd_per_month=cold_monthly,
            recompute_usd_per_month=monthly_recompute,
            caching_is_cheaper=analysis.storing_is_cheaper(reuse_rate),
            cold_caching_is_cheaper=reuse_rate >= cold_breakeven,
        )
    return result

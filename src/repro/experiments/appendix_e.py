"""Appendix E: the economics of storing KV caches vs recomputing them.

For an 8.5K-token Llama-13B context, storing CacheGen's encoded versions costs
cents per month while every recomputation costs a fraction of a cent — so past
~150 reuses per month the cache also saves money, not just latency.  The cold
(disk/object-store) tier stores the same bytes several times cheaper, so its
breakeven reuse rate is proportionally lower — the economic rationale for
demoting capacity victims there instead of dropping them.

The analysis can also price a *declared deployment*: pass a
:class:`~repro.serving.api.ServingSpec` and the metadata gains the monthly
storage bill of its full topology (per-node hot/cold budgets x node count),
priced by the same tiered model the cluster reports use.
"""

from __future__ import annotations

from typing import Sequence

from ..llm.model_config import get_model_config
from ..serving.api import ServingSpec
from ..storage.cost import TieredCostModel
from .common import ExperimentResult

__all__ = ["run_appendix_e"]


def run_appendix_e(
    model: str = "llama-13b",
    num_tokens: int = 8_500,
    bits_per_element: float = 2.4,
    num_versions: int = 4,
    reuse_rates_per_month: Sequence[int] = (10, 50, 150, 500, 1_000),
    spec: ServingSpec | None = None,
) -> ExperimentResult:
    """Reproduce the Appendix E storage-vs-recompute cost analysis.

    Each row prices the hot tier (the paper's headline estimate) and the cold
    tier side by side at one monthly reuse rate.  With ``spec`` given, the
    context is priced for that deployment's model and the metadata includes
    the spec topology's fully-provisioned monthly storage bill.
    """
    cost_model = TieredCostModel()
    if spec is not None:
        model = spec.model
    model_config = get_model_config(model) if isinstance(model, str) else model
    analysis = cost_model.analyse(
        model=model_config,
        num_tokens=num_tokens,
        compressed_bits_per_element=bits_per_element,
        num_stored_versions=num_versions,
    )
    # Same bytes, cheaper tier: scale the hot bill by the price ratio so the
    # two columns always price the context ``analyse`` sized.
    pricing = cost_model.pricing
    cold_monthly = analysis.storage_usd_per_month * (
        pricing.cold_storage_usd_per_gb_month / pricing.storage_usd_per_gb_month
    )
    cold_breakeven = cold_monthly / analysis.recompute_usd_per_request
    metadata = {
        "model": model_config.name,
        "num_tokens": num_tokens,
        "storage_usd_per_month": analysis.storage_usd_per_month,
        "cold_storage_usd_per_month": cold_monthly,
        "recompute_usd_per_request": analysis.recompute_usd_per_request,
        "breakeven_requests_per_month": analysis.breakeven_requests_per_month,
        "cold_breakeven_requests_per_month": cold_breakeven,
    }
    if spec is not None:
        hot_capacity = (spec.max_bytes_per_node or 0.0) * spec.num_nodes
        cold_capacity = (spec.cold_bytes_per_node or 0.0) * spec.num_nodes
        metadata["spec_topology"] = spec.topology
        metadata["spec_storage_usd_per_month"] = cost_model.monthly_storage_cost(
            hot_capacity, cold_capacity
        )
    result = ExperimentResult(
        name="appendix-e",
        description="Storage vs recompute cost of a cached context, per tier",
        metadata=metadata,
    )
    for reuse_rate in reuse_rates_per_month:
        monthly_recompute = analysis.recompute_usd_per_request * reuse_rate
        result.add_row(
            requests_per_month=reuse_rate,
            storage_usd_per_month=analysis.storage_usd_per_month,
            cold_storage_usd_per_month=cold_monthly,
            recompute_usd_per_month=monthly_recompute,
            caching_is_cheaper=analysis.storing_is_cheaper(reuse_rate),
            cold_caching_is_cheaper=reuse_rate >= cold_breakeven,
        )
    return result

"""Shared infrastructure for the evaluation-reproduction experiments.

Every table/figure module builds on the same pieces: a model + dataset
workbench that generates reference KV caches, a fitted CacheGen encoder, the
standard set of methods to compare, and a uniform result container that the
benchmark harness can print as the rows/series the paper reports.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..baselines import (
    CacheGenMethod,
    ContextLoadingMethod,
    LoadRequest,
    MethodResult,
    TextContextBaseline,
    UniformQuantizationBaseline,
)
from ..core.config import CacheGenConfig
from ..core.encoder import CacheGenEncoder
from ..core.kv_cache import KVCache
from ..datasets import get_dataset
from ..datasets.base import ContextRecord, SyntheticDataset
from ..llm.compute_model import A40, ComputeModel, GPUSpec
from ..llm.model_config import ModelConfig, get_model_config
from ..llm.quality import QualityModel
from ..llm.synthetic_model import SyntheticLLM
from ..network.bandwidth import ConstantTrace, gbps
from ..network.link import NetworkLink

__all__ = ["ExperimentResult", "Workbench", "default_link", "experiment_cli"]


@dataclass
class ExperimentResult:
    """Rows of one reproduced table or figure."""

    name: str
    description: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, key: str) -> list[Any]:
        """Values of one column across all rows."""
        return [row.get(key) for row in self.rows]

    def filter(self, **criteria: Any) -> list[dict[str, Any]]:
        """Rows matching all of the given column values."""
        return [
            row
            for row in self.rows
            if all(row.get(key) == value for key, value in criteria.items())
        ]

    def format_table(self, columns: Sequence[str] | None = None, float_fmt: str = "{:.3f}") -> str:
        """Render the rows as a plain-text table (one line per row)."""
        if not self.rows:
            return f"{self.name}: (no rows)"
        columns = list(columns or self.rows[0].keys())
        lines = [f"# {self.name} — {self.description}", "\t".join(columns)]
        for row in self.rows:
            cells = []
            for column in columns:
                value = row.get(column, "")
                if isinstance(value, float):
                    cells.append(float_fmt.format(value))
                else:
                    cells.append(str(value))
            lines.append("\t".join(cells))
        return "\n".join(lines)


def default_link(bandwidth_gbps: float = 3.0) -> NetworkLink:
    """A constant-rate link (the paper's headline setting is 3 Gbps)."""
    return NetworkLink(ConstantTrace(gbps(bandwidth_gbps)))


class Workbench:
    """Prepares everything needed to evaluate methods on one model + dataset.

    The workbench owns the synthetic LLM, its compute model, a fitted CacheGen
    encoder, a small set of dataset records, and a cache of reference KV
    caches.  Experiments ask it for :class:`LoadRequest` objects and evaluate
    any :class:`ContextLoadingMethod` against them.

    Parameters
    ----------
    model:
        Serving model name or configuration.
    dataset:
        Dataset name or instance.
    num_contexts:
        How many of the dataset's contexts to evaluate (the paper uses the
        full datasets; the reproduction defaults to a handful per point to
        keep the benchmark suite fast — increase for tighter estimates).
    gpu:
        GPU spec for the compute model.
    context_token_cap:
        Optional cap on context lengths (used by fast test settings).
    profile_tokens / profile_samples:
        Size of the offline encoder-profiling workload.
    """

    def __init__(
        self,
        model: ModelConfig | str = "mistral-7b",
        dataset: SyntheticDataset | str = "longchat",
        num_contexts: int = 3,
        gpu: GPUSpec = A40,
        codec_config: CacheGenConfig | None = None,
        context_token_cap: int | None = None,
        profile_tokens: int = 1_000,
        profile_samples: int = 2,
        kv_cache_size: int = 4,
    ) -> None:
        self.model = get_model_config(model) if isinstance(model, str) else model
        self.dataset = get_dataset(dataset) if isinstance(dataset, str) else dataset
        self.gpu = gpu
        self.codec_config = codec_config or CacheGenConfig()

        base_values = {self.dataset.task: self.dataset.base_quality_for(self.model.name)}
        self.quality_model = QualityModel(
            num_layers=self.model.sim_layers, base_values=base_values
        )
        self.llm = SyntheticLLM(self.model, quality_model=self.quality_model)
        self.compute = ComputeModel(self.model, gpu)

        records = self.dataset.records(num_contexts)
        if context_token_cap is not None:
            records = [
                ContextRecord(
                    context_id=record.context_id,
                    num_tokens=min(record.num_tokens, context_token_cap),
                    prompt_tokens=record.prompt_tokens,
                    task=record.task,
                    question=record.question,
                )
                for record in records
            ]
        self.records: list[ContextRecord] = records

        self.encoder = CacheGenEncoder(self.codec_config)
        self.encoder.fit(
            [
                self.llm.calculate_kv(f"__profile-{i}", profile_tokens)
                for i in range(profile_samples)
            ]
        )

        self._kv_cache: OrderedDict[str, KVCache] = OrderedDict()
        self._kv_cache_size = max(kv_cache_size, 1)

    # --------------------------------------------------------------- KV caches
    def reference_kv(self, record: ContextRecord) -> KVCache:
        """The lossless KV cache of a record (memoised)."""
        key = f"{record.context_id}:{record.num_tokens}"
        if key in self._kv_cache:
            self._kv_cache.move_to_end(key)
            return self._kv_cache[key]
        kv = self.llm.calculate_kv(record.context_id, record.num_tokens)
        self._kv_cache[key] = kv
        while len(self._kv_cache) > self._kv_cache_size:
            self._kv_cache.popitem(last=False)
        return kv

    # ---------------------------------------------------------------- requests
    def request_for(
        self,
        record: ContextRecord,
        link: NetworkLink | None = None,
        gpu_share: float = 1.0,
        concurrency: int = 1,
        slo_s: float | None = None,
    ) -> LoadRequest:
        """Build a :class:`LoadRequest` for one record."""
        return LoadRequest(
            record=record,
            llm=self.llm,
            reference_kv=self.reference_kv(record),
            link=link or default_link(),
            compute_model=self.compute,
            quality_model=self.quality_model,
            gpu_share=gpu_share,
            concurrency=concurrency,
            slo_s=slo_s,
        )

    def evaluate(
        self,
        method: ContextLoadingMethod,
        link: NetworkLink | None = None,
        records: Iterable[ContextRecord] | None = None,
        gpu_share: float = 1.0,
        concurrency: int = 1,
        slo_s: float | None = None,
    ) -> list[MethodResult]:
        """Evaluate one method over all (or the given) records."""
        chosen = list(records) if records is not None else self.records
        return [
            method.evaluate(
                self.request_for(
                    record,
                    link=link,
                    gpu_share=gpu_share,
                    concurrency=concurrency,
                    slo_s=slo_s,
                )
            )
            for record in chosen
        ]

    # ----------------------------------------------------------------- methods
    def standard_methods(self, quant_bits: Sequence[int] = (8,)) -> dict[str, ContextLoadingMethod]:
        """The three-way comparison used throughout §7.2/§7.3."""
        methods: dict[str, ContextLoadingMethod] = {"text": TextContextBaseline()}
        for bits in quant_bits:
            baseline = UniformQuantizationBaseline(bits)
            methods[baseline.name] = baseline
        methods["cachegen"] = self.cachegen_method()
        return methods

    def cachegen_method(self, adaptive: bool = True, fixed_level: str | None = None) -> CacheGenMethod:
        """A CacheGen method sharing this workbench's fitted encoder."""
        return CacheGenMethod(self.encoder, adaptive=adaptive, fixed_level=fixed_level)

    # --------------------------------------------------------------- summaries
    @staticmethod
    def mean(values: Iterable[float]) -> float:
        values = list(values)
        if not values:
            raise ValueError("no values to average")
        return float(sum(values) / len(values))

    @staticmethod
    def summarize(results: Sequence[MethodResult]) -> dict[str, float]:
        """Mean TTFT, size and quality of a method's results."""
        if not results:
            raise ValueError("no results to summarise")
        return {
            "ttft_s": Workbench.mean(r.ttft_s for r in results),
            "kv_size_mb": Workbench.mean(r.kv_size_bytes / 1e6 for r in results),
            "quality": Workbench.mean(r.quality.value for r in results),
            "relative_quality": Workbench.mean(r.quality.relative_quality for r in results),
        }


# ------------------------------------------------------------------------- CLI
def experiment_cli(argv: Sequence[str] | None = None) -> str:
    """Run one experiment by name and return its report as text.

    This is the body of ``python -m repro.experiments``; it returns the output
    instead of printing so the library stays print-free (the ``__main__``
    shim does the printing).  ``--trace-out`` / ``--trace-jsonl`` record the
    run's telemetry (experiments that accept a ``tracer``) and export it as a
    Perfetto-loadable Chrome trace / a structured JSONL event log;
    ``--metrics-out`` writes the run's metrics-registry snapshot as JSON;
    ``--dashboard-out`` renders the windowed run dashboard (window width from
    ``--window-s``, an optional TTFT SLO from ``--slo-ttft-s`` /
    ``--slo-target`` driving the burn-rate alerts); ``--gpu-workers N`` runs
    fleet-aware experiments with a pool of ``N`` GPU workers.
    """
    import argparse
    import inspect
    import json

    from . import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run one reproduced table/figure and print its rows.",
    )
    parser.add_argument("experiment", choices=sorted(ALL_EXPERIMENTS))
    parser.add_argument(
        "--gpu-workers",
        type=int,
        default=None,
        metavar="N",
        help="size of the GPU worker fleet (experiments that accept gpu_workers)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write a Chrome trace-event JSON of the run (open at ui.perfetto.dev)",
    )
    parser.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="write the run's structured JSONL event log",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the run's metrics-registry snapshot as JSON",
    )
    parser.add_argument(
        "--dashboard-out",
        default=None,
        metavar="PATH",
        help="write the run's self-contained HTML dashboard",
    )
    parser.add_argument(
        "--window-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="dashboard window width (default: auto, ~60 windows over the run)",
    )
    parser.add_argument(
        "--slo-ttft-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="TTFT SLO threshold driving the dashboard's burn-rate alerts",
    )
    parser.add_argument(
        "--slo-target",
        type=float,
        default=0.99,
        metavar="FRACTION",
        help="fraction of requests that must meet --slo-ttft-s (default 0.99)",
    )
    args = parser.parse_args(argv)
    run = ALL_EXPERIMENTS[args.experiment]

    tracer = None
    wants_telemetry = (
        args.trace_out is not None
        or args.trace_jsonl is not None
        or args.metrics_out is not None
        or args.dashboard_out is not None
    )
    if wants_telemetry:
        if "tracer" not in inspect.signature(run).parameters:
            parser.error(
                f"{args.experiment} does not support tracing; traceable "
                "experiments: "
                + ", ".join(
                    sorted(
                        name
                        for name, fn in ALL_EXPERIMENTS.items()
                        if "tracer" in inspect.signature(fn).parameters
                    )
                )
            )
        from ..telemetry import Tracer

        tracer = Tracer()

    kwargs: dict[str, Any] = {}
    if tracer is not None:
        kwargs["tracer"] = tracer
    if args.gpu_workers is not None:
        if "gpu_workers" not in inspect.signature(run).parameters:
            parser.error(
                f"{args.experiment} does not support --gpu-workers; fleet-aware "
                "experiments: "
                + ", ".join(
                    sorted(
                        name
                        for name, fn in ALL_EXPERIMENTS.items()
                        if "gpu_workers" in inspect.signature(fn).parameters
                    )
                )
            )
        kwargs["gpu_workers"] = args.gpu_workers
    result = run(**kwargs)
    lines = [result.format_table()]
    if tracer is not None:
        from ..telemetry import write_chrome_trace, write_jsonl

        if args.trace_out is not None:
            lines.append(f"wrote Chrome trace to {write_chrome_trace(tracer, args.trace_out)}")
        if args.trace_jsonl is not None:
            lines.append(f"wrote event log to {write_jsonl(tracer, args.trace_jsonl)}")
        if args.metrics_out is not None:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(tracer.metrics.snapshot(), handle, indent=2, sort_keys=True)
            lines.append(f"wrote metrics snapshot to {args.metrics_out}")
        if args.dashboard_out is not None:
            from ..telemetry import (
                AlertEngine,
                SLOObjective,
                TimeSeriesRecorder,
                auto_window_s,
                write_dashboard,
            )

            window_s = args.window_s or auto_window_s(getattr(tracer, "now", 0.0))
            recorder = TimeSeriesRecorder.from_tracer(tracer, window_s=window_s)
            objectives = (
                [SLOObjective("ttft", args.slo_ttft_s, target=args.slo_target)]
                if args.slo_ttft_s is not None
                else []
            )
            alerts = AlertEngine(objectives).evaluate(recorder.windows())
            path = write_dashboard(
                args.dashboard_out,
                recorder,
                alerts=alerts,
                objectives=objectives,
                title=f"{args.experiment} dashboard",
            )
            lines.append(f"wrote dashboard to {path}")
    return "\n".join(lines)

"""Figure 12: TTFT vs number of concurrent requests and vs context length.

Left: with more concurrent requests each request gets fewer GPU cycles, so the
text (prefill) baseline degrades much faster than CacheGen.  Right: the longer
the context, the larger CacheGen's gain; below ~1K tokens CacheGen reverts to
loading text, which is then the faster path.
"""

from __future__ import annotations

from typing import Sequence

from .common import ExperimentResult, Workbench, default_link

__all__ = ["run_figure12_concurrency", "run_figure12_context_length"]


def run_figure12_concurrency(
    concurrency_levels: Sequence[int] = (1, 2, 4, 8, 12),
    num_tokens: int = 9_600,
    bandwidth_gbps: float = 3.0,
    model: str = "mistral-7b",
) -> ExperimentResult:
    """Reproduce Figure 12 (left): TTFT vs number of concurrent requests."""
    workbench = Workbench(model=model, dataset="longchat", num_contexts=1)
    base_record = workbench.records[0]
    record = type(base_record)(
        context_id=base_record.context_id,
        num_tokens=num_tokens,
        prompt_tokens=base_record.prompt_tokens,
        task=base_record.task,
        question=base_record.question,
    )
    link = default_link(bandwidth_gbps)
    methods = workbench.standard_methods(quant_bits=(8,))

    result = ExperimentResult(
        name="figure12-concurrency",
        description="TTFT vs number of concurrent requests",
        metadata={"num_tokens": num_tokens},
    )
    for n in concurrency_levels:
        for method_name, method in methods.items():
            request = workbench.request_for(
                record, link=link, gpu_share=1.0 / n, concurrency=n
            )
            outcome = method.evaluate(request)
            result.add_row(
                concurrent_requests=n,
                method=method_name,
                ttft_s=outcome.ttft_s,
            )
    return result


def run_figure12_context_length(
    context_lengths: Sequence[int] = (100, 500, 1_000, 3_000, 6_000, 9_000, 15_000),
    bandwidth_gbps: float = 3.0,
    model: str = "mistral-7b",
) -> ExperimentResult:
    """Reproduce Figure 12 (right): TTFT vs context length.

    CacheGen is reported as ``min(cachegen, text)`` because the system reverts
    to the text path whenever that is faster (short contexts).
    """
    workbench = Workbench(model=model, dataset="longchat", num_contexts=1)
    base_record = workbench.records[0]
    link = default_link(bandwidth_gbps)
    methods = workbench.standard_methods(quant_bits=(8,))

    result = ExperimentResult(
        name="figure12-context-length",
        description="TTFT vs context length",
    )
    for num_tokens in context_lengths:
        record = type(base_record)(
            context_id=base_record.context_id,
            num_tokens=num_tokens,
            prompt_tokens=base_record.prompt_tokens,
            task=base_record.task,
            question=base_record.question,
        )
        ttfts: dict[str, float] = {}
        for method_name, method in methods.items():
            outcome = method.evaluate(workbench.request_for(record, link=link))
            ttfts[method_name] = outcome.ttft_s
        ttfts["cachegen"] = min(ttfts["cachegen"], ttfts["text"])
        for method_name, ttft in ttfts.items():
            result.add_row(context_tokens=num_tokens, method=method_name, ttft_s=ttft)
    return result

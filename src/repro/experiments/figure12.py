"""Figure 12: TTFT vs number of concurrent requests and vs context length.

Left: with more concurrent requests the GPU run queue and the shared link
back up, so the text (prefill) baseline — whose serialized prefills dominate
the GPU — degrades much faster than CacheGen, whose batched bitstream decodes
are cheap.  The concurrency curve is served through the *unified serving API*:
one :class:`~repro.serving.api.ServingSpec`, the event-driven concurrent
backend, and ``n`` identical requests arriving together — each request's TTFT
(queueing + transfer + decode + compute) is read off the schedule; there is no
static ``gpu_share`` parameter anywhere in this path.  The quantization
baseline has no engine path, so its rows still run the raw event simulator
with the same arrival pattern.  Right: the longer the context, the larger
CacheGen's gain; below ~1K tokens CacheGen reverts to loading text, which is
then the faster path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..baselines import UniformQuantizationBaseline
from ..serving.api import ServeRequest, ServingSpec, build_backend
from ..serving.concurrent.processes import StaticLoad
from ..serving.concurrent.simulator import ConcurrentLoadSimulator
from .common import ExperimentResult, Workbench, default_link

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from ..telemetry.trace import Tracer

__all__ = ["run_figure12_concurrency", "run_figure12_context_length"]

#: Context ids used by the concurrency panel: one ingested (KV path), one
#: deliberately never ingested (text re-prefill path).
_KV_CONTEXT = "figure12-context"
_TEXT_CONTEXT = "figure12-text-context"


def run_figure12_concurrency(
    concurrency_levels: Sequence[int] = (1, 2, 4, 8, 12),
    num_tokens: int = 9_600,
    bandwidth_gbps: float = 3.0,
    model: str = "mistral-7b",
    max_decode_batch: int = 16,
    gpu_workers: int = 1,
    tracer: "Tracer | None" = None,
) -> ExperimentResult:
    """Reproduce Figure 12 (left): TTFT vs number of concurrent requests.

    For every method and concurrency level ``n``, ``n`` identical requests
    arrive at time zero and are served through the event-driven backend of one
    shared :class:`~repro.serving.api.ServingSpec` (shared link, serialized
    GPU, batched decodes); the reported TTFT is the mean across the ``n``
    requests, and the mean queueing delay is recorded alongside it.  Pass a
    ``tracer`` to capture every level's schedule (request spans, GPU batches,
    link transfers) on one exportable timeline.

    ``gpu_workers`` re-derives the curve as a fleet-level sweep: the same
    arrival pattern dispatched across a pool of GPU workers
    (``python -m repro.experiments figure12-concurrency --gpu-workers 4``).
    With one worker the run is bit-identical to the historical single-GPU
    curve; with more, the queueing component shrinks at high load while the
    shared link stays the bottleneck it is in the paper.
    """
    spec = ServingSpec(
        model=model,
        topology="single",
        concurrency=max(max(concurrency_levels), 2 if gpu_workers > 1 else 1),
        bandwidth_gbps=bandwidth_gbps,
        max_decode_batch=max_decode_batch,
        gpu_workers=gpu_workers,
    )
    backend = build_backend(spec, kind="concurrent")
    if tracer is not None:
        backend.attach_tracer(tracer)
    backend.ingest(_KV_CONTEXT, num_tokens)
    engine = backend.engine
    question = "What does the context say?"
    prompt_tokens = max(engine.llm.tokenizer.count_tokens(question), 1)

    # The quantization baseline has no engine path: size its payload from the
    # same (deterministic) reference KV and play it through the raw event
    # simulator.
    quant_baseline = UniformQuantizationBaseline(8)
    _, quant_bytes = quant_baseline.quantized_cache(
        engine.llm.calculate_kv(_KV_CONTEXT, num_tokens)
    )

    result = ExperimentResult(
        name="figure12-concurrency",
        description="TTFT vs number of concurrent requests (event-driven)",
        metadata={"num_tokens": num_tokens, "gpu_workers": gpu_workers},
    )
    for n in concurrency_levels:
        for method_name, context_id in (("text", _TEXT_CONTEXT), ("cachegen", _KV_CONTEXT)):
            for _ in range(n):
                backend.submit(
                    ServeRequest(
                        context_id, question, arrival_s=0.0, num_tokens=num_tokens
                    )
                )
            responses = backend.run()
            result.add_row(
                concurrent_requests=n,
                method=method_name,
                ttft_s=sum(r.ttft_s for r in responses) / n,
                queueing_s=sum(r.queueing_s for r in responses) / n,
            )
        link = default_link(bandwidth_gbps)
        simulator = ConcurrentLoadSimulator(
            max_decode_batch=max_decode_batch,
            initial_throughput_bps=link.trace.bandwidth_at(0.0),
            gpu_workers=gpu_workers,
            tracer=tracer,
        )
        for _ in range(n):
            simulator.add_request(
                0.0,
                link,
                StaticLoad.quant_load(
                    quant_bytes, engine.compute_model, prompt_tokens=prompt_tokens
                ),
            )
        timelines = simulator.run()
        result.add_row(
            concurrent_requests=n,
            method=quant_baseline.name,
            ttft_s=sum(t.total_s for t in timelines) / n,
            queueing_s=sum(t.queueing_s for t in timelines) / n,
        )
    return result


def run_figure12_context_length(
    context_lengths: Sequence[int] = (100, 500, 1_000, 3_000, 6_000, 9_000, 15_000),
    bandwidth_gbps: float = 3.0,
    model: str = "mistral-7b",
) -> ExperimentResult:
    """Reproduce Figure 12 (right): TTFT vs context length.

    CacheGen is reported as ``min(cachegen, text)`` because the system reverts
    to the text path whenever that is faster (short contexts).
    """
    workbench = Workbench(model=model, dataset="longchat", num_contexts=1)
    base_record = workbench.records[0]
    link = default_link(bandwidth_gbps)
    methods = workbench.standard_methods(quant_bits=(8,))

    result = ExperimentResult(
        name="figure12-context-length",
        description="TTFT vs context length",
    )
    for num_tokens in context_lengths:
        record = type(base_record)(
            context_id=base_record.context_id,
            num_tokens=num_tokens,
            prompt_tokens=base_record.prompt_tokens,
            task=base_record.task,
            question=base_record.question,
        )
        ttfts: dict[str, float] = {}
        for method_name, method in methods.items():
            outcome = method.evaluate(workbench.request_for(record, link=link))
            ttfts[method_name] = outcome.ttft_s
        ttfts["cachegen"] = min(ttfts["cachegen"], ttfts["text"])
        for method_name, ttft in ttfts.items():
            result.add_row(context_tokens=num_tokens, method=method_name, ttft_s=ttft)
    return result

"""Figure 12: TTFT vs number of concurrent requests and vs context length.

Left: with more concurrent requests the GPU run queue and the shared link
back up, so the text (prefill) baseline — whose serialized prefills dominate
the GPU — degrades much faster than CacheGen, whose batched bitstream decodes
are cheap.  The concurrency curve is produced by the event-driven concurrent
serving simulator: ``n`` identical requests arrive together, share one link
and one GPU, and each request's TTFT (queueing + transfer + compute) is read
off the schedule — there is no static ``gpu_share`` parameter anywhere in
this path.  Right: the longer the context, the larger CacheGen's gain; below
~1K tokens CacheGen reverts to loading text, which is then the faster path.
"""

from __future__ import annotations

from typing import Sequence

from ..baselines import TextContextBaseline, UniformQuantizationBaseline
from ..serving.concurrent.processes import ChunkedKVLoad, StaticLoad
from ..serving.concurrent.simulator import ConcurrentLoadSimulator
from ..streaming.adaptation import FixedLevelPolicy
from ..streaming.chunking import prepare_chunks
from .common import ExperimentResult, Workbench, default_link

__all__ = ["run_figure12_concurrency", "run_figure12_context_length"]


def run_figure12_concurrency(
    concurrency_levels: Sequence[int] = (1, 2, 4, 8, 12),
    num_tokens: int = 9_600,
    bandwidth_gbps: float = 3.0,
    model: str = "mistral-7b",
    max_decode_batch: int = 16,
) -> ExperimentResult:
    """Reproduce Figure 12 (left): TTFT vs number of concurrent requests.

    For every method and concurrency level ``n``, ``n`` identical requests
    arrive at time zero and are served through the concurrent load simulator
    (shared link, serialized GPU, batched decodes); the reported TTFT is the
    mean across the ``n`` requests, and the mean queueing delay is recorded
    alongside it.
    """
    workbench = Workbench(model=model, dataset="longchat", num_contexts=1)
    base_record = workbench.records[0]
    record = type(base_record)(
        context_id=base_record.context_id,
        num_tokens=num_tokens,
        prompt_tokens=base_record.prompt_tokens,
        task=base_record.task,
        question=base_record.question,
    )
    compute = workbench.compute
    reference_kv = workbench.reference_kv(record)
    prepared = prepare_chunks(reference_kv, workbench.encoder)
    default_level = workbench.encoder.config.default_level.name

    text_baseline = TextContextBaseline()
    text_bytes = num_tokens * text_baseline.bytes_per_token
    quant_baseline = UniformQuantizationBaseline(8)
    _, quant_bytes = quant_baseline.quantized_cache(reference_kv)
    prompt_tokens = record.prompt_tokens

    def build_process(method_name: str):
        if method_name == "text":
            return StaticLoad.text_load(
                num_tokens, text_bytes, compute, prompt_tokens=prompt_tokens
            )
        if method_name == quant_baseline.name:
            return StaticLoad.quant_load(
                quant_bytes, compute, prompt_tokens=prompt_tokens
            )
        return ChunkedKVLoad(
            prepared,
            policy=FixedLevelPolicy(level_name=default_level),
            compute=compute,
            prompt_tokens=prompt_tokens,
            batch_key="gpu-server",
        )

    result = ExperimentResult(
        name="figure12-concurrency",
        description="TTFT vs number of concurrent requests (event-driven)",
        metadata={"num_tokens": num_tokens},
    )
    for n in concurrency_levels:
        for method_name in ("text", quant_baseline.name, "cachegen"):
            link = default_link(bandwidth_gbps)
            simulator = ConcurrentLoadSimulator(
                max_decode_batch=max_decode_batch,
                initial_throughput_bps=link.trace.bandwidth_at(0.0),
            )
            for _ in range(n):
                simulator.add_request(0.0, link, build_process(method_name))
            timelines = simulator.run()
            result.add_row(
                concurrent_requests=n,
                method=method_name,
                ttft_s=sum(t.total_s for t in timelines) / n,
                queueing_s=sum(t.queueing_s for t in timelines) / n,
            )
    return result


def run_figure12_context_length(
    context_lengths: Sequence[int] = (100, 500, 1_000, 3_000, 6_000, 9_000, 15_000),
    bandwidth_gbps: float = 3.0,
    model: str = "mistral-7b",
) -> ExperimentResult:
    """Reproduce Figure 12 (right): TTFT vs context length.

    CacheGen is reported as ``min(cachegen, text)`` because the system reverts
    to the text path whenever that is faster (short contexts).
    """
    workbench = Workbench(model=model, dataset="longchat", num_contexts=1)
    base_record = workbench.records[0]
    link = default_link(bandwidth_gbps)
    methods = workbench.standard_methods(quant_bits=(8,))

    result = ExperimentResult(
        name="figure12-context-length",
        description="TTFT vs context length",
    )
    for num_tokens in context_lengths:
        record = type(base_record)(
            context_id=base_record.context_id,
            num_tokens=num_tokens,
            prompt_tokens=base_record.prompt_tokens,
            task=base_record.task,
            question=base_record.question,
        )
        ttfts: dict[str, float] = {}
        for method_name, method in methods.items():
            outcome = method.evaluate(workbench.request_for(record, link=link))
            ttfts[method_name] = outcome.ttft_s
        ttfts["cachegen"] = min(ttfts["cachegen"], ttfts["text"])
        for method_name, ttft in ttfts.items():
            result.add_row(context_tokens=num_tokens, method=method_name, ttft_s=ttft)
    return result

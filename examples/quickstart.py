"""Quickstart: encode, stream and decode a KV cache with CacheGen.

Run with ``python examples/quickstart.py``.

The example walks the core pipeline end to end:

1. prefill a long context into a KV cache (synthetic LLM substrate),
2. fit the CacheGen encoder's probability models offline,
3. encode the cache into compact bitstreams at several quality levels,
4. ship it over a simulated 3 Gbps link and decode it,
5. compare size, delay and generation quality against the 8-bit quantization
   and text-recompute baselines.
"""

from __future__ import annotations

import os

from repro import CacheGenDecoder, CacheGenEncoder, ConstantTrace, NetworkLink, SyntheticLLM, gbps
from repro.core.quantization import vectorwise_quantize
from repro.core.kv_cache import KVCache
from repro.llm import ComputeModel, MISTRAL_7B

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    llm = SyntheticLLM(MISTRAL_7B)
    compute = ComputeModel(MISTRAL_7B)
    link = NetworkLink(ConstantTrace(gbps(3.0)))

    # 1. Prefill a reusable 9.4K-token context once.
    context_tokens = 2_400 if SMOKE else 9_400
    kv = llm.calculate_kv("financial-report-2023", context_tokens)
    print(f"KV cache: {kv.num_tokens} tokens, {kv.full_nbytes / 1e9:.2f} GB in fp16")

    # 2. Profile the encoder offline (once per model).
    encoder = CacheGenEncoder()
    encoder.fit([llm.calculate_kv(f"profile-{i}", 2_000) for i in range(2)])
    decoder = CacheGenDecoder(encoder)

    # 3. Encode at every level and report sizes.
    print("\nEncoding levels:")
    for level in encoder.config.levels:
        encoded = encoder.encode(kv, level)
        print(
            f"  {level.name:>7}: {encoded.compressed_bytes / 1e6:7.1f} MB "
            f"({encoded.bits_per_element:.2f} bits/element)"
        )

    # 4. Ship the default level and decode it.
    encoded = encoder.encode(kv)
    transfer = link.transfer(encoded.compressed_bytes)
    decode_delay = compute.decode_delay(context_tokens)
    decoded = decoder.decode(encoded)
    result = llm.generate_with_kv(decoded, reference_kv=kv, task="qa_accuracy")
    print(
        f"\nCacheGen: {encoded.compressed_bytes / 1e6:.1f} MB, "
        f"transfer {transfer.duration:.2f}s + decode {decode_delay:.2f}s, "
        f"relative quality {result.quality.relative_quality:.3f}"
    )

    # 5. Baselines.
    q_k, q_v = vectorwise_quantize(kv.k, 8), vectorwise_quantize(kv.v, 8)
    quant_kv = KVCache(q_k.dequantize(), q_v.dequantize(), model_name=kv.model_name,
                       full_layers=kv.full_layers, full_channels=kv.full_channels)
    quant_bytes = kv.full_num_elements  # 8 bits/element
    quant_transfer = link.transfer(quant_bytes)
    quant_quality = llm.generate_with_kv(quant_kv, reference_kv=kv).quality
    print(
        f"8-bit quant: {quant_bytes / 1e6:.1f} MB, transfer {quant_transfer.duration:.2f}s, "
        f"relative quality {quant_quality.relative_quality:.3f}"
    )
    text_delay = compute.prefill_delay(context_tokens)
    print(f"Text recompute: prefill {text_delay:.2f}s (lossless)")

    speedup = (quant_transfer.duration) / (transfer.duration + decode_delay)
    print(f"\nCacheGen is {speedup:.1f}x faster to load than the 8-bit quantized cache.")


if __name__ == "__main__":
    main()

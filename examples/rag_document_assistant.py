"""RAG-style document assistant: reuse one document's KV cache across queries.

This mirrors the paper's motivating scenario (§2.2): a long financial report
is ingested once, its encoded KV cache lives on a storage server, and several
different questions about the same document arrive over time.  Every query
after the first skips the prefill and only pays the (compressed) KV transfer.

Run with ``python examples/rag_document_assistant.py``.
"""

from __future__ import annotations

from repro import ContextLoadingEngine, ConstantTrace, NetworkLink, gbps


QUESTIONS = [
    "Write a short summary based on the company's earning report last quarter.",
    "What were the company's top sources of revenue in the last quarter?",
    "Did the report mention any regulatory risks?",
]


def main() -> None:
    link = NetworkLink(ConstantTrace(gbps(3.0)))
    engine = ContextLoadingEngine("mistral-7b", link=link)

    # Ingest the document once: prefill, encode at every level, store.
    report = engine.ingest("acme-earnings-q4", num_tokens=9_000)
    print(
        f"Ingested {report.num_tokens}-token report into {report.num_chunks} chunks; "
        f"stored {report.total_stored_bytes / 1e6:.1f} MB across "
        f"{len(report.stored_bytes_per_level)} encoding levels "
        f"(encode took {report.encode_delay_s:.2f}s of wall-clock time)."
    )

    # Answer several questions against the same cached context.
    for question in QUESTIONS:
        response = engine.query("acme-earnings-q4", question, task="qa_f1")
        print(
            f"\nQ: {question}\n"
            f"   TTFT {response.ttft_s:.2f}s "
            f"(network {response.ttft.network_s:.2f}s, decode {response.ttft.decode_s:.2f}s, "
            f"compute {response.ttft.compute_s:.2f}s), "
            f"chunks sent as {sorted(set(response.chunk_configs))}, "
            f"relative quality {response.quality.relative_quality:.3f}"
        )

    # Contrast with a cold document that has to take the text path.
    cold = engine.query("fresh-lawsuit-filing", QUESTIONS[2], num_tokens=9_000, task="qa_f1")
    print(
        f"\nCold context (no cached KV): TTFT {cold.ttft_s:.2f}s via the text path — "
        f"{cold.ttft_s / max(1e-9, response.ttft_s):.1f}x slower than the cached queries."
    )


if __name__ == "__main__":
    main()

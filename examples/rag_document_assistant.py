"""RAG-style document assistant: reuse one document's KV cache across queries.

This mirrors the paper's motivating scenario (§2.2): a long financial report
is ingested once, its encoded KV cache lives on a storage server, and several
different questions about the same document arrive over time.  Every query
after the first skips the prefill and only pays the (compressed) KV transfer.

The deployment is declared once as a :class:`repro.ServingSpec` and served
through the unified API.

Run with ``PYTHONPATH=src python examples/rag_document_assistant.py``
(set ``REPRO_SMOKE=1`` for a fast CI-sized run).
"""

from __future__ import annotations

import os

from repro import ServeRequest, ServingSpec, build_backend

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
DOC_TOKENS = 2_400 if SMOKE else 9_000
QUESTIONS = [
    "Write a short summary based on the company's earning report last quarter.",
    "What were the company's top sources of revenue in the last quarter?",
    "Did the report mention any regulatory risks?",
]


def main() -> None:
    spec = ServingSpec(model="mistral-7b", bandwidth_gbps=3.0)
    backend = build_backend(spec)

    # Ingest the document once: prefill, encode at every level, store.
    report = backend.ingest("acme-earnings-q4", num_tokens=DOC_TOKENS)
    print(
        f"Ingested {report.num_tokens}-token report into {report.num_chunks} chunks; "
        f"stored {report.total_stored_bytes / 1e6:.1f} MB across "
        f"{len(report.stored_bytes_per_level)} encoding levels "
        f"(modeled GPU encode time {report.encode_delay_s:.2f}s)."
    )

    # Answer several questions against the same cached context.
    for question in QUESTIONS:
        backend.submit(ServeRequest("acme-earnings-q4", question, task="qa_f1"))
        response = backend.run()[0]
        print(
            f"\nQ: {question}\n"
            f"   TTFT {response.ttft_s:.2f}s "
            f"(network {response.ttft.network_s:.2f}s, decode {response.ttft.decode_s:.2f}s, "
            f"compute {response.ttft.compute_s:.2f}s), "
            f"chunks sent as {sorted(set(response.chunk_configs))}, "
            f"relative quality {response.quality.relative_quality:.3f}"
        )

    # Contrast with a cold document that has to take the text path.
    backend.submit(
        ServeRequest("fresh-lawsuit-filing", QUESTIONS[2], num_tokens=DOC_TOKENS, task="qa_f1")
    )
    cold = backend.run()[0]
    print(
        f"\nCold context (no cached KV): TTFT {cold.ttft_s:.2f}s via the text path — "
        f"{cold.ttft_s / max(1e-9, response.ttft_s):.1f}x slower than the cached queries."
    )


if __name__ == "__main__":
    main()

"""Cluster simulation: a 4-node KV-cache cluster surviving a node failure.

Run with ``PYTHONPATH=src python examples/cluster_simulation.py``
(set ``REPRO_SMOKE=1`` for a fast CI-sized run).

The example exercises the unified serving API's arrival-driven driver:

1. declare a 4-node cluster with heterogeneous links, bounded node capacity,
   LRU eviction and 2x replication as one :class:`repro.ServingSpec`,
2. replay a Zipf(α=1) / Poisson multi-tenant workload *open-loop* through the
   driver — requests enter the event simulation at their true arrival times,
   so queueing is steady-state, not an artifact of fixed-size waves,
3. kill one node mid-stream — queries fail over to replicas or fall back to
   the text path, so TTFT degrades but every request is served,
4. print the unified run report: per-node hit ratios, evictions, TTFT and
   queueing percentiles, arrival rates, bytes moved and SLO attainment.
"""

from __future__ import annotations

import os

from repro import Driver, ServingSpec, WorkloadGenerator, build_backend

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
NUM_REQUESTS = 60 if SMOKE else 240
FAIL_AT = NUM_REQUESTS // 2
FAILED_NODE = "node-2"


def main() -> None:
    # Heterogeneous storage nodes: two on a fast LAN, two farther away.
    spec = ServingSpec(
        model="mistral-7b",
        topology="cluster",
        num_nodes=4,
        replication=2,
        node_bandwidths_gbps=(3.0, 3.0, 1.5, 1.0),
        max_bytes_per_node=600e6,  # a handful of long contexts per node
        eviction_policy="lru",
        chunk_tokens=512,
        concurrency=4,
        slo_s=1.5,
        adaptive=False,
    )
    backend = build_backend(spec)
    workload = WorkloadGenerator(
        num_contexts=16,
        zipf_alpha=1.0,
        arrival_rate_per_s=2.0,
        token_choices=(700, 1_400, 2_800) if not SMOKE else (350, 700),
        seed=2024,
    )
    driver = Driver(backend, workload, node_failures={FAIL_AT: FAILED_NODE})

    print(
        f"Serving {NUM_REQUESTS} requests open-loop on 4 nodes; "
        f"{FAILED_NODE} dies at request {FAIL_AT}\n"
    )
    report = driver.run(NUM_REQUESTS)
    print(report.format_table())

    # Every request must be served for the positional before/after split to
    # line up with request indices (nothing is shed or dropped here).
    assert report.hard_failures == 0, "every request must be served"
    assert len(report.responses) == NUM_REQUESTS

    before = [r.ttft_s for r in report.responses[:FAIL_AT]]
    after = [r.ttft_s for r in report.responses[FAIL_AT:]]
    print(
        f"\nmean TTFT before failure: {sum(before) / len(before):.3f}s, "
        f"after: {sum(after) / len(after):.3f}s"
    )
    print(f"failovers: {report.failovers}, hard failures: {report.hard_failures}")


if __name__ == "__main__":
    main()

"""Cluster simulation: a 4-node KV-cache cluster surviving a node failure.

Run with ``PYTHONPATH=src python examples/cluster_simulation.py``.

The example exercises the acceptance scenario of the cluster subsystem:

1. build a 4-node cluster with heterogeneous links, bounded node capacity,
   LRU eviction and 2x replication,
2. drive 240 requests of a Zipf(α=1) / Poisson multi-tenant workload
   through the serving frontend,
3. kill one node mid-run — queries fail over to replicas or fall back to the
   text path, so TTFT degrades but every request is served,
4. print the cluster report: per-node hit ratios, evictions, TTFT
   percentiles, bytes moved and SLO attainment.
"""

from __future__ import annotations

from repro.cluster import ClusterFrontend, ClusterSimulator, WorkloadGenerator
from repro.core import CacheGenConfig
from repro.network import ConstantTrace, NetworkLink, gbps

NUM_REQUESTS = 240
FAIL_AT = NUM_REQUESTS // 2
FAILED_NODE = "node-2"


def main() -> None:
    # Heterogeneous storage nodes: two on a fast LAN, two farther away.
    links = [NetworkLink(ConstantTrace(gbps(b))) for b in (3.0, 3.0, 1.5, 1.0)]
    frontend = ClusterFrontend(
        "mistral-7b",
        node_links=links,
        replication_factor=2,
        max_bytes_per_node=600e6,  # a handful of long contexts per node
        eviction_policy="lru",
        config=CacheGenConfig(chunk_tokens=512),
    )
    workload = WorkloadGenerator(
        num_contexts=16,
        zipf_alpha=1.0,
        arrival_rate_per_s=2.0,
        token_choices=(700, 1_400, 2_800),
        seed=2024,
    )
    simulator = ClusterSimulator(
        frontend,
        workload,
        slo_s=1.5,
        adaptive=False,
        node_failures={FAIL_AT: FAILED_NODE},
    )

    print(f"Serving {NUM_REQUESTS} requests on 4 nodes; {FAILED_NODE} dies at request {FAIL_AT}\n")
    report = simulator.run(NUM_REQUESTS)
    print(report.format_table())

    before = [r.ttft_s for r in report.records if r.request.index < FAIL_AT]
    after = [r.ttft_s for r in report.records if r.request.index >= FAIL_AT]
    print(
        f"\nmean TTFT before failure: {sum(before) / len(before):.3f}s, "
        f"after: {sum(after) / len(after):.3f}s"
    )
    print(f"failovers: {report.failovers}, hard failures: {report.hard_failures}")
    assert report.hard_failures == 0, "every request must be served"


if __name__ == "__main__":
    main()

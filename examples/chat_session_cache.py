"""Multi-turn chat: the conversation history's KV cache grows and is reused.

In chat applications the accumulated history is prepended to every new user
turn (§2.2).  This example simulates a session in which the history grows turn
by turn; after every turn the serving backend re-ingests the updated history,
and each new user message reuses the cached KV instead of re-prefilling
thousands of tokens.  It also reports the Appendix-E style economics of
keeping the cache.

The deployment is declared once as a :class:`repro.ServingSpec` and served
through the unified API (``ingest`` + ``submit``/``run`` on the backend).

Run with ``PYTHONPATH=src python examples/chat_session_cache.py``
(set ``REPRO_SMOKE=1`` for a fast CI-sized run).
"""

from __future__ import annotations

import os

from repro import ServeRequest, ServingSpec, build_backend
from repro.llm import LLAMA_13B, get_model_config
from repro.storage import CostModel

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
TURNS = [
    ("What is the role of art in society?", 1_800),
    ("How does that relate to public funding of museums?", 3_600),
    ("Summarise our discussion so far.", 5_400),
    ("What was the first topic we discussed?", 7_200),
]
if SMOKE:
    TURNS = [(question, tokens // 4) for question, tokens in TURNS[:3]]


def main() -> None:
    spec = ServingSpec(model="mistral-7b", topology="single")
    backend = build_backend(spec)
    session_id = "chat-session-42"

    print("Simulating a growing chat session (history re-ingested after each turn):\n")
    for turn, (question, history_tokens) in enumerate(TURNS, start=1):
        backend.ingest(f"{session_id}-turn{turn}", history_tokens)
        backend.submit(ServeRequest(f"{session_id}-turn{turn}", question))
        response = backend.run()[0]
        path = "cached KV" if response.used_kv_cache else "text prefill"
        print(
            f"Turn {turn}: history {history_tokens:>5} tokens | {path:>12} | "
            f"TTFT {response.ttft_s:5.2f}s | quality {response.quality.relative_quality:.3f}"
        )

    # Appendix E economics: is it worth keeping the final history cached?
    cost = CostModel().analyse(
        model=get_model_config("mistral-7b"),
        num_tokens=TURNS[-1][1],
        compressed_bits_per_element=2.4,
        num_stored_versions=4,
    )
    print(
        f"\nStoring the final history costs ${cost.storage_usd_per_month:.3f}/month; "
        f"recomputing it costs ${cost.recompute_usd_per_request:.5f}/request.\n"
        f"Caching pays off above {cost.breakeven_requests_per_month:.0f} requests per month."
    )

    # The same analysis for a larger model, as in the paper's appendix.
    larger = CostModel().analyse(LLAMA_13B, 8_500, 2.4, num_stored_versions=4)
    print(
        f"For Llama-13B at 8.5K tokens the breakeven is "
        f"{larger.breakeven_requests_per_month:.0f} requests/month."
    )


if __name__ == "__main__":
    main()

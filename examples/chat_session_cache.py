"""Multi-turn chat: the conversation history's KV cache grows and is reused.

In chat applications the accumulated history is prepended to every new user
turn (§2.2).  This example simulates a session in which the history grows turn
by turn; after every turn the engine re-ingests the updated history, and each
new user message reuses the cached KV instead of re-prefilling thousands of
tokens.  It also reports the Appendix-E style economics of keeping the cache.

Run with ``python examples/chat_session_cache.py``.
"""

from __future__ import annotations

from repro import ContextLoadingEngine, ConstantTrace, NetworkLink, gbps
from repro.llm import LLAMA_13B, get_model_config
from repro.storage import CostModel

TURNS = [
    ("What is the role of art in society?", 1_800),
    ("How does that relate to public funding of museums?", 3_600),
    ("Summarise our discussion so far.", 5_400),
    ("What was the first topic we discussed?", 7_200),
]


def main() -> None:
    engine = ContextLoadingEngine("mistral-7b", link=NetworkLink(ConstantTrace(gbps(3.0))))
    session_id = "chat-session-42"

    print("Simulating a growing chat session (history re-ingested after each turn):\n")
    for turn, (question, history_tokens) in enumerate(TURNS, start=1):
        engine.ingest(f"{session_id}-turn{turn}", history_tokens)
        response = engine.query(f"{session_id}-turn{turn}", question)
        path = "cached KV" if response.used_kv_cache else "text prefill"
        print(
            f"Turn {turn}: history {history_tokens:>5} tokens | {path:>12} | "
            f"TTFT {response.ttft_s:5.2f}s | quality {response.quality.relative_quality:.3f}"
        )

    # Appendix E economics: is it worth keeping the final history cached?
    cost = CostModel().analyse(
        model=get_model_config("mistral-7b"),
        num_tokens=TURNS[-1][1],
        compressed_bits_per_element=2.4,
        num_stored_versions=4,
    )
    print(
        f"\nStoring the final history costs ${cost.storage_usd_per_month:.3f}/month; "
        f"recomputing it costs ${cost.recompute_usd_per_request:.5f}/request.\n"
        f"Caching pays off above {cost.breakeven_requests_per_month:.0f} requests per month."
    )

    # The same analysis for a larger model, as in the paper's appendix.
    larger = CostModel().analyse(LLAMA_13B, 8_500, 2.4, num_stored_versions=4)
    print(
        f"For Llama-13B at 8.5K tokens the breakeven is "
        f"{larger.breakeven_requests_per_month:.0f} requests/month."
    )


if __name__ == "__main__":
    main()

"""Bandwidth-adaptive KV streaming under an SLO (the Figure 7 scenario).

A chat session's long history is streamed to the GPU server while the
available bandwidth collapses mid-transfer.  The example compares three
deliveries of the same context:

* the 8-bit quantization baseline (no adaptation, large payload),
* CacheGen without adaptation (fixed default encoding level),
* CacheGen with the SLO-aware adapter, which switches chunks to lower
  encoding levels or to text recomputation as the bandwidth drops.

Run with ``python examples/bandwidth_adaptive_streaming.py``.
"""

from __future__ import annotations

import os

from repro import NetworkLink, StepTrace, gbps
from repro.baselines import UniformQuantizationBaseline
from repro.experiments.common import Workbench

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main() -> None:
    slo_s = 6.0
    workbench = Workbench(
        model="mistral-7b",
        dataset="longchat",
        num_contexts=1,
        context_token_cap=2_400 if SMOKE else None,
    )
    record = workbench.records[0]
    print(
        f"Streaming the KV cache of a {record.num_tokens}-token chat history "
        f"with a {slo_s:.0f}s TTFT SLO.\n"
        "Bandwidth: 0.5 Gbps, dropping to 0.05 Gbps at t=2s, recovering to 0.3 Gbps at t=4s.\n"
    )
    trace = StepTrace(gbps(0.5), gbps(0.05), gbps(0.3), drop_at_s=2.0, recover_at_s=4.0)
    link = NetworkLink(trace)

    methods = {
        "8-bit quantization": UniformQuantizationBaseline(8),
        "CacheGen (no adaptation)": workbench.cachegen_method(adaptive=False),
        "CacheGen (adaptive)": workbench.cachegen_method(adaptive=True),
    }
    for name, method in methods.items():
        outcome = method.evaluate(workbench.request_for(record, link=link, slo_s=slo_s))
        loading = outcome.extras.get("loading_delay_s", outcome.ttft_s)
        configs = outcome.extras.get("configs")
        print(f"{name}:")
        print(f"  loading delay {loading:.2f}s -> {'meets' if loading <= slo_s else 'VIOLATES'} the SLO")
        print(f"  bytes sent {outcome.transmitted_bytes / 1e6:.1f} MB, quality {outcome.quality.value:.3f}")
        if configs:
            print(f"  per-chunk configurations: {configs}")
        print()


if __name__ == "__main__":
    main()

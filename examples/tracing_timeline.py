"""Tracing a concurrent serving run and exporting a Perfetto timeline.

Run with ``PYTHONPATH=src python examples/tracing_timeline.py``
(set ``REPRO_SMOKE=1`` for a fast CI-sized run).

The example records full telemetry for a contended serving run:

1. serve a burst of near-simultaneous queries with a :class:`repro.Tracer`
   attached — every request gets a span tree (admission wait, link wait,
   transfer, GPU-queue wait, batched decode, prefill compute) and every
   shared resource a swimlane of its own,
2. show that the trace *explains* the tail: the slowest request's TTFT
   breakdown is reproduced exactly by summing its child spans per category,
   so the queueing share of a bad TTFT can be read straight off the
   timeline,
3. export the run as Chrome trace-event JSON (open it at ui.perfetto.dev)
   and as a JSONL event log, plus the metrics-registry snapshot.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro import ServeRequest, ServingSpec, Tracer, serve, write_chrome_trace, write_jsonl

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
NUM_TOKENS = 800 if SMOKE else 4_000
NUM_REQUESTS = 4 if SMOKE else 8


def main() -> None:
    spec = ServingSpec(model="mistral-7b", concurrency=NUM_REQUESTS, max_decode_batch=4)
    requests = [
        ServeRequest(
            "annual-report", f"Question {i}?", arrival_s=0.02 * i, num_tokens=NUM_TOKENS
        )
        for i in range(NUM_REQUESTS)
    ]

    tracer = Tracer()
    report = serve(spec, requests, tracer=tracer)
    assert report.telemetry is tracer

    print(f"{NUM_REQUESTS} queries arriving within {0.02 * NUM_REQUESTS:.2f}s of each other:\n")
    slowest = max(report.responses, key=lambda r: r.ttft_s)
    root = next(
        span
        for span in tracer.root_spans()
        # Exact == is safe here: the span start is copied from the arrival.
        if span.category == "request"
        and span.start_s == slowest.arrival_s  # simcheck: ignore[SIM004]
    )
    print(f"slowest request: {slowest.context_id!r} ttft={slowest.ttft_s:.3f}s")
    print(f"its span tree (track {root.track}):")
    for span in root.walk():
        indent = "  " if span is root else "    "
        print(
            f"{indent}{span.name:<24} start={span.start_s:6.3f}s "
            f"dur={span.dur_s:6.3f}s [{span.category}]"
        )

    # The trace is exact: per-category child-span sums reproduce the
    # response's TTFT decomposition to the last digit.
    sums: dict[str, float] = {}
    for child in root.children:
        sums[child.category] = sums.get(child.category, 0.0) + child.dur_s
    ttft = slowest.ttft
    print("\nspan sums vs TTFT breakdown:")
    for category, reported in [
        ("queueing", ttft.queueing_s),
        ("transfer", ttft.network_s),
        ("decode", ttft.decode_s),
        ("compute", ttft.compute_s),
    ]:
        print(f"  {category:<9} spans={sums.get(category, 0.0):.6f}s breakdown={reported:.6f}s")

    gpu_busy = tracer.metrics.counter("gpu_busy_s").value(gpu="gpu")
    depth = tracer.metrics.gauge("gpu_queue_depth").max(gpu="gpu")
    print(f"\ngpu busy time: {gpu_busy:.3f}s, peak gpu queue depth: {depth:.0f}")

    out_dir = Path(tempfile.mkdtemp(prefix="repro-trace-"))
    trace_path = write_chrome_trace(tracer, out_dir / "timeline.json")
    events_path = write_jsonl(tracer, out_dir / "events.jsonl")
    print(f"\nwrote Chrome trace to {trace_path} (open at ui.perfetto.dev)")
    print(f"wrote event log to {events_path}")


if __name__ == "__main__":
    main()

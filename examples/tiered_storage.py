"""Tiered storage: a capacity-squeezed cluster that demotes instead of drops.

Run with ``PYTHONPATH=src python examples/tiered_storage.py``
(set ``REPRO_SMOKE=1`` for a fast CI-sized run).

The example serves the same pressured workload against two 2-node
deployments, each declared as one :class:`repro.ServingSpec`:

1. **memory-only** — each node has a small hot tier and nothing behind it, so
   capacity evictions drop contexts and re-accesses re-pay the full prefill;
2. **tiered** — the same hot tier backed by a 10x larger disk tier behind a
   1 Gbps tier link, so evictions demote, cold hits promote back to hot, and
   only the tier-link read (not a re-prefill) is paid on a cold hit.

It then prints both unified run reports side by side: the tiered run converts
evict-drops into demotions, text fallbacks into cold hits, and shows the
per-tier hit ratios, the monthly storage bill and the $/request figure the
Appendix-E prices imply.
"""

from __future__ import annotations

import os

from repro import ServingSpec, WorkloadGenerator, serve

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
NUM_REQUESTS = 40 if SMOKE else 80
HOT_BYTES = 120e6
COLD_BYTES = 1.2e9


def run(cold_bytes_per_node: float | None) -> None:
    spec = ServingSpec(
        model="mistral-7b",
        topology="tiered" if cold_bytes_per_node else "cluster",
        num_nodes=2,
        replication=2,
        max_bytes_per_node=HOT_BYTES,
        cold_bytes_per_node=cold_bytes_per_node,
        tier_bandwidth_gbps=1.0,
        eviction_policy="lru",
        chunk_tokens=512,
        concurrency=4,
        slo_s=1.5,
        adaptive=False,
    )
    workload = WorkloadGenerator(
        num_contexts=10, zipf_alpha=1.0, token_choices=(700, 1_400), seed=7
    )
    report = serve(spec, workload=workload, num_requests=NUM_REQUESTS)
    print(report.format_table())
    cold = [r for r in report.responses if r.served_tier == "cold"]
    if cold:
        mean_tier = sum(r.tier_transfer_s for r in cold) / len(cold)
        print(
            f"  {len(cold)} cold hits paid a mean {mean_tier:.3f}s tier-link read "
            "instead of a re-prefill"
        )


def main() -> None:
    print(f"=== memory-only nodes ({HOT_BYTES / 1e6:.0f} MB each) ===")
    run(cold_bytes_per_node=None)
    print()
    print(
        f"=== tiered nodes ({HOT_BYTES / 1e6:.0f} MB hot + "
        f"{COLD_BYTES / 1e6:.0f} MB cold behind 1 Gbps) ==="
    )
    run(cold_bytes_per_node=COLD_BYTES)


if __name__ == "__main__":
    main()

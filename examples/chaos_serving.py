"""Chaos serving: a replicated cluster self-healing through injected faults.

Run with ``PYTHONPATH=src python examples/chaos_serving.py``
(set ``REPRO_SMOKE=1`` for a fast CI-sized run; pass an output path as the
first argument to also write the Chrome trace for byte-compare checks).

The example drives the unified serving API through a scripted outage:

1. declare a 3-node cluster with 2x replication and a full
   :class:`repro.ResiliencePolicy` (retries with backoff, hedged reads,
   per-node circuit breakers, background re-replication),
2. script a :class:`repro.FaultSchedule` on the simulated clock — a node
   crash that later recovers, a flapping link degradation, and a corrupted
   stored context,
3. replay a Zipf workload open-loop with ``serve(..., faults=...)`` — reads
   fail over, retry, repair and degrade but every request is served,
4. print the run report plus its :class:`repro.ResilienceReport`:
   availability, goodput vs degraded, MTTR per fault, retry/hedge/breaker
   counts.

The same spec + schedule + seed replays to an identical report and trace —
chaos runs are exactly as deterministic as healthy ones.
"""

from __future__ import annotations

import os
import sys
import warnings

from repro import (
    Corruption,
    FaultSchedule,
    LinkDegradation,
    NodeCrash,
    ResiliencePolicy,
    ServingSpec,
    Tracer,
    WorkloadGenerator,
    serve,
    write_chrome_trace,
)

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
NUM_REQUESTS = 40 if SMOKE else 160
ARRIVAL_RATE = 2.0
SPAN_S = NUM_REQUESTS / ARRIVAL_RATE


def main() -> None:
    spec = ServingSpec(
        model="mistral-7b",
        topology="cluster",
        num_nodes=3,
        replication=2,
        chunk_tokens=256,
        concurrency=4,
        slo_s=1.0,
        adaptive=False,
        resilience=ResiliencePolicy(),
    )
    # The outage script, on the simulated clock: a crash window covering the
    # middle of the run, a flapping degraded link, and one corrupted replica.
    faults = FaultSchedule(
        [
            NodeCrash("node-0", at_s=0.2 * SPAN_S, recover_at_s=0.7 * SPAN_S),
            LinkDegradation(
                at_s=0.3 * SPAN_S,
                until_s=0.5 * SPAN_S,
                factor=0.25,
                node_id="node-1",
                flaps=2,
            ),
            Corruption("ctx-0000", at_s=0.4 * SPAN_S),
        ]
    )
    workload = WorkloadGenerator(
        num_contexts=8,
        zipf_alpha=1.0,
        arrival_rate_per_s=ARRIVAL_RATE,
        seed=11,
    )

    print(
        f"Serving {NUM_REQUESTS} requests on 3 nodes (replication=2) through "
        f"a crash, a flapping link and a corrupted context\n"
    )
    tracer = Tracer()
    with warnings.catch_warnings():
        # The driver warns once that fault boundaries flush queued backlog;
        # here the faults are the point of the run.
        warnings.simplefilter("ignore")
        report = serve(
            spec,
            workload=workload,
            num_requests=NUM_REQUESTS,
            faults=faults,
            tracer=tracer,
        )
    print(report.format_table())
    assert report.resilience is not None
    print()
    print(report.resilience.format_table())

    # Self-healing's contract: faults degrade service, they never drop it.
    assert report.hard_failures == 0, "every request must be served"
    assert report.resilience.availability == 1.0

    if len(sys.argv) > 1:
        write_chrome_trace(tracer, sys.argv[1])
        print(f"\nwrote Chrome trace to {sys.argv[1]}")


if __name__ == "__main__":
    main()

"""Concurrent serving: queueing delay emerging from the event-driven engine.

Run with ``PYTHONPATH=src python examples/concurrent_serving.py``
(set ``REPRO_SMOKE=1`` for a fast CI-sized run).

The example exercises the unified serving API end to end:

1. declare a single-node deployment as a :class:`repro.ServingSpec` with
   ``concurrency > 1`` (which selects the event-driven backend) and ingest
   two long contexts,
2. serve six queries arriving close together — requests contend for the link
   and the GPU run queue, and each :class:`repro.ServeResponse` reports its
   TTFT decomposed into queueing + transfer (network) + decode + prompt
   compute,
3. sweep the number of simultaneous requests to show TTFT degrading
   monotonically with concurrency — with no ``gpu_share`` knob anywhere; the
   degradation is pure queueing,
4. hit a GPU fleet — declared entirely through the spec's ``gpu_workers`` /
   ``dispatch_policy`` fields, no engine internals — with a flash crowd of
   cold contexts (GPU-bound text re-prefill) to show added workers draining
   the queueing component.
"""

from __future__ import annotations

import os

from repro import ServeRequest, ServingSpec, build_backend

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
CONTEXTS = (
    {"annual-report": 1_500, "design-doc": 800}
    if SMOKE
    else {"annual-report": 6_000, "design-doc": 3_000}
)
ARRIVALS = [0.0, 0.05, 0.1, 0.15, 0.2, 0.25]


def main() -> None:
    spec = ServingSpec(model="mistral-7b", concurrency=8, max_decode_batch=8)
    backend = build_backend(spec)
    for context_id, num_tokens in CONTEXTS.items():
        backend.ingest(context_id, num_tokens)

    print("Six queries arriving within 250 ms of each other:\n")
    context_ids = list(CONTEXTS)
    for i, arrival_s in enumerate(ARRIVALS):
        backend.submit(
            ServeRequest(
                context_ids[i % len(context_ids)], f"Question {i}?", arrival_s=arrival_s
            )
        )
    responses = backend.run()

    header = (
        f"{'context':<14} {'arrive':>7} {'ttft':>7} {'queue':>7} "
        f"{'net':>7} {'decode':>7} {'compute':>8}"
    )
    print(header)
    for response in responses:
        ttft = response.ttft
        print(
            f"{response.context_id:<14} {response.arrival_s:>6.2f}s {response.ttft_s:>6.3f}s "
            f"{response.queueing_s:>6.3f}s {ttft.network_s:>6.3f}s "
            f"{ttft.decode_s:>6.3f}s {ttft.compute_s:>7.3f}s"
        )
        assert abs(
            response.ttft_s
            - (response.queueing_s + ttft.network_s + ttft.decode_s + ttft.compute_s)
        ) < 1e-9, "the decomposition must be exact"

    print("\nMean TTFT vs simultaneous requests (same context, same instant):")
    for n in (1, 2, 4, 8):
        for _ in range(n):
            backend.submit(ServeRequest("annual-report", "How did revenue develop?"))
        burst = backend.run()
        mean_ttft = sum(r.ttft_s for r in burst) / n
        mean_queue = sum(r.queueing_s for r in burst) / n
        print(f"  n={n:<2}  mean TTFT {mean_ttft:6.3f}s   mean queueing {mean_queue:6.3f}s")

    # A flash crowd of *cold* contexts degrades to text re-prefill — pure GPU
    # compute — so the queue builds on the schedulers, not the link.  The
    # fleet is declared entirely through spec fields.
    cold_tokens = CONTEXTS["design-doc"]
    print("\nFlash crowd of 12 cold contexts (text re-prefill, GPU-bound):")
    for gpu_workers in (1, 2, 4):
        fleet = build_backend(
            ServingSpec(
                model="mistral-7b",
                concurrency=8,
                max_decode_batch=8,
                gpu_workers=gpu_workers,
                dispatch_policy="locality",
            )
        )
        for i in range(12):
            fleet.submit(
                ServeRequest(
                    f"cold-context-{i}",
                    f"Burst question {i}?",
                    arrival_s=0.02 * i,
                    num_tokens=cold_tokens,
                )
            )
        burst = fleet.run()
        mean_ttft = sum(r.ttft_s for r in burst) / len(burst)
        mean_queue = sum(r.queueing_s for r in burst) / len(burst)
        print(
            f"  gpu_workers={gpu_workers}  mean TTFT {mean_ttft:6.3f}s   "
            f"mean queueing {mean_queue:6.3f}s"
        )


if __name__ == "__main__":
    main()

"""Operational dashboard of a cluster run with one injected node failure.

Run with ``PYTHONPATH=src python examples/run_dashboard.py``
(set ``REPRO_SMOKE=1`` for a fast CI-sized run).

The example tells the on-call story end to end:

1. drive a healthy cluster run to measure the steady-state TTFT and derive a
   TTFT SLO from it,
2. replay the same arrival stream with a scheduled :class:`repro.NodeCrash`
   taking the context's only replica down mid-run — every request in between
   degrades to text re-prefill, so the per-window TTFT p99 spikes and the hit
   ratio collapses,
3. the burn-rate :class:`repro.telemetry.AlertEngine` fires during the spike
   and resolves after the recovery (on the simulated clock),
4. write the self-contained HTML dashboard (traffic, TTFT percentile
   ribbons, utilization lanes, tier hit-ratio stack, fault timeline, alert
   timeline) plus the healthy-vs-failure diff view.
"""

from __future__ import annotations

import os
import tempfile
import warnings
from pathlib import Path

from repro import (
    Driver,
    FaultSchedule,
    NodeCrash,
    ServeRequest,
    ServingSpec,
    SLOObjective,
    Tracer,
    build_backend,
    render_diff_dashboard,
    write_dashboard,
)

SMOKE = os.environ.get("REPRO_SMOKE") == "1"
NUM_REQUESTS = 60 if SMOKE else 120
ARRIVAL_RATE = 10.0  # requests per second
NUM_TOKENS = 640
WINDOW_S = 0.5
CONTEXT = "ops-context"


def spec() -> ServingSpec:
    # Each node runs a two-worker GPU fleet (``gpu_workers=2``) so the
    # dashboard's utilization lanes show per-worker swimlanes; dispatch and
    # pool sizing are spec fields, not engine internals.
    return ServingSpec(
        model="mistral-7b",
        chunk_tokens=256,
        topology="cluster",
        num_nodes=2,
        replication=1,
        concurrency=2,
        gpu_workers=2,
        dispatch_policy="locality",
    )


def requests() -> list[ServeRequest]:
    return [
        ServeRequest(
            CONTEXT, f"Question {i}?", arrival_s=i / ARRIVAL_RATE, num_tokens=NUM_TOKENS
        )
        for i in range(NUM_REQUESTS)
    ]


def main() -> None:
    # 1. A healthy run sets the baseline the SLO is derived from.
    healthy = Driver(build_backend(spec()), requests(), window_s=WINDOW_S).run()
    slo = SLOObjective("ttft", ttft_s=2.0 * healthy.ttft.p99_s, target=0.9)
    print(
        f"healthy run: TTFT p99={healthy.ttft.p99_s:.3f}s -> "
        f"SLO {slo.target:.0%} within {slo.ttft_s:.3f}s"
    )

    # Placement is deterministic, so a scratch backend tells us which node
    # holds the context's only replica before we decide what to break.
    scratch = build_backend(spec())
    scratch.ingest(CONTEXT, NUM_TOKENS)
    primary = scratch.replicas_for(CONTEXT)[0]

    # 2. The same arrival stream, with a scheduled crash window mid-run.
    fail_s = NUM_REQUESTS / ARRIVAL_RATE / 3
    recover_s = 2 * fail_s
    faults = FaultSchedule([NodeCrash(primary, at_s=fail_s, recover_at_s=recover_s)])
    tracer = Tracer()
    driver = Driver(
        build_backend(spec()),
        requests(),
        faults=faults,
        tracer=tracer,
        window_s=WINDOW_S,
        slos=[slo],
    )
    with warnings.catch_warnings():
        # The driver warns once that the crash boundary flushes queued
        # backlog; the outage is this example's point.
        warnings.simplefilter("ignore")
        report = driver.run()
    print(f"\nfailure run: {primary} down at t={fail_s:.1f}s, up at t={recover_s:.1f}s")
    print(report.format_table())

    # 3. The window series shows the spike; the alert brackets it.
    spike = max(
        report.timeseries.windows(),
        key=lambda w: w.ttft_percentile(99.0) if w.ttft_samples else 0.0,
    )
    print(
        f"\nworst window [{spike.start_s:g}s, {spike.end_s:g}s): "
        f"TTFT p99={spike.ttft_percentile(99.0):.3f}s, "
        f"hit ratio={spike.hit_ratio:.0%}"
    )
    for alert in report.alerts:
        resolved = (
            f"resolved at {alert.resolved_at_s:g}s"
            if alert.resolved_at_s is not None
            else "still active"
        )
        print(f"alert [{alert.severity}] {alert.name}: fired at {alert.fired_at_s:g}s, {resolved}")

    # 4. The self-contained dashboard plus the healthy-vs-failure diff.
    out_dir = Path(tempfile.mkdtemp(prefix="repro-dashboard-"))
    dashboard = write_dashboard(
        out_dir / "dashboard.html",
        report.timeseries,
        alerts=report.alerts,
        objectives=[slo],
        faults=report.resilience.faults if report.resilience else (),
        title="Cluster run with node failure",
    )
    diff = out_dir / "diff.html"
    diff.write_text(
        render_diff_dashboard(
            healthy.timeseries,
            report.timeseries,
            labels=("healthy", "node failure"),
            title="Healthy vs node-failure run",
        ),
        encoding="utf-8",
    )
    print(f"\nwrote dashboard to {dashboard}")
    print(f"wrote diff view to {diff}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Execute the python snippets of one README section (doctest-style CI).

Extracts every fenced ``python`` code block under the given heading (up to
the next same-level heading) and runs them in one shared namespace, so a
section's snippets can build on each other.  Any exception fails the run —
this is how CI keeps the README's fleet quickstart honest:

    PYTHONPATH=src REPRO_SMOKE=1 python scripts/run_readme_snippets.py \
        --section "Fleet serving & autoscaling"
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def extract_snippets(markdown: str, section: str) -> list[str]:
    """Fenced python blocks between ``section``'s heading and the next one."""
    lines = markdown.splitlines()
    heading_re = re.compile(r"^(#+)\s+(.*)$")
    start = level = None
    for i, line in enumerate(lines):
        match = heading_re.match(line)
        if match and match.group(2).strip() == section:
            start, level = i + 1, len(match.group(1))
            break
    if start is None:
        raise SystemExit(f"section {section!r} not found in README")
    end = len(lines)
    for i in range(start, len(lines)):
        match = heading_re.match(lines[i])
        if match and len(match.group(1)) <= level:
            end = i
            break
    body = "\n".join(lines[start:end])
    return re.findall(r"```python\n(.*?)```", body, flags=re.DOTALL)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--readme", type=Path, default=REPO_ROOT / "README.md")
    parser.add_argument(
        "--section",
        default="Fleet serving & autoscaling",
        help="heading whose python blocks are executed (default: the fleet quickstart)",
    )
    args = parser.parse_args(argv)

    snippets = extract_snippets(args.readme.read_text(encoding="utf-8"), args.section)
    if not snippets:
        print(  # noqa: T201 - CLI entry point
            f"no python snippets under {args.section!r}", file=sys.stderr
        )
        return 1
    namespace: dict[str, object] = {"__name__": "__readme__"}
    for index, snippet in enumerate(snippets):
        print(f"running snippet {index + 1}/{len(snippets)}")  # noqa: T201 - CLI
        exec(compile(snippet, f"<README:{args.section}:{index}>", "exec"), namespace)
    print(f"{len(snippets)} snippet(s) ran clean")  # noqa: T201 - CLI entry point
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Check that relative markdown links resolve to files in the repository.

Scans the given markdown files (default: README.md, ROADMAP.md, CHANGES.md
and everything under docs/) for ``[text](target)`` links and verifies every
*relative* target exists on disk.  External links (http/https/mailto) and
pure in-page anchors (``#section``) are not fetched — this check is
network-free so CI stays deterministic.

    python scripts/check_markdown_links.py            # default file set
    python scripts/check_markdown_links.py docs/*.md  # explicit files
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Inline links ``[text](target)``; images share the syntax via ``![alt](t)``.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def default_files() -> list[Path]:
    files = [REPO_ROOT / "README.md", REPO_ROOT / "ROADMAP.md", REPO_ROOT / "CHANGES.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("**/*.md")))
    return [path for path in files if path.exists()]


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    text = path.read_text(encoding="utf-8")
    # Strip fenced code blocks: link-looking text in code is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(EXTERNAL_SCHEMES) or target.startswith("#"):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (path.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link -> {target}")
    return errors


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    files = [Path(arg) for arg in argv] if argv else default_files()
    errors: list[str] = []
    for path in files:
        if not path.exists():
            errors.append(f"{path}: file not found")
            continue
        errors.extend(check_file(path))
    for error in errors:
        print(error, file=sys.stderr)  # noqa: T201 - CLI entry point
    print(  # noqa: T201 - CLI entry point
        f"checked {len(files)} markdown file(s): "
        + ("FAILED" if errors else "all links resolve")
    )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
